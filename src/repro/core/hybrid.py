"""The hybrid counting framework (Section 5, Algorithm 9).

The sampling estimators shine in dense regions (an h-zigzag is likely to
hit a biclique), while EPivoter shines in sparse regions (few enumerated
bicliques).  The hybrid algorithm:

1. partitions the left side into a *sparse* region ``S`` and a *dense*
   region ``D`` with the peeling weight rule of Algorithm 9;
2. counts exactly with EPivoter over root edges whose left endpoint is in
   ``S``;
3. estimates with ZigZag or ZigZag++ over the subgraphs owned by ``D``.

Every biclique is attributed to the region of its minimal left vertex
under the degree ordering, so the two partial counts add up without
overlap (the paper's "thanks to the degree ordering" argument).
"""

from __future__ import annotations

import numpy as np

from repro.core.counts import BicliqueCounts
from repro.core.epivoter import EPivoter
from repro.core.zigzag import zigzag_count_all, zigzagpp_count_all
from repro.graph.bigraph import BipartiteGraph
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_TRACE, Trace

__all__ = [
    "partition_graph",
    "vertex_weights",
    "hybrid_count_all",
    "hybrid_count_single",
]


def vertex_weights(graph: BipartiteGraph) -> list[int]:
    """The peeling weights ``w(u)`` of Definition 5.1 / Algorithm 9.

    ``w(u) = sum over v in N(u) of |N^{>u}(v)| * |N^{>v}(u)|`` — the number
    of ordering-neighbor edge pairs rooted at each of ``u``'s edges, a
    cheap proxy for how much enumeration work the edge-rooted searches of
    EPivoter would spend on ``u``.  Requires a degree-ordered graph; runs
    in ``O(|E|)``.
    """
    # Copy: degrees_right() is the graph's cache and this loop decrements.
    remaining_right = list(graph.degrees_right())
    weights = [0] * graph.n_left
    for u in range(graph.n_left):
        remaining_u = graph.degree_left(u)
        total = 0
        for v in graph.neighbors_left(u):
            remaining_right[v] -= 1
            remaining_u -= 1
            total += remaining_right[v] * remaining_u
        weights[u] = total
    return weights


def partition_graph(
    graph: BipartiteGraph,
    tau: "float | None" = None,
    quantile: float = 0.9,
) -> tuple[set[int], set[int], list[int]]:
    """Split the left side into sparse ``S`` and dense ``D`` regions.

    ``tau`` is the weight threshold of Algorithm 9 (``w(u) > tau`` goes to
    the dense region).  When omitted it defaults to the ``quantile`` of
    the positive weights, which reproduces the paper's observation
    (Table 5) that the sparse region holds most vertices but few
    butterflies.

    Returns ``(sparse, dense, weights)``.
    """
    weights = vertex_weights(graph)
    if tau is None:
        positive = sorted(w for w in weights if w > 0)
        if not positive:
            tau = 0.0
        else:
            index = min(len(positive) - 1, int(quantile * len(positive)))
            tau = float(positive[index])
    sparse = {u for u in range(graph.n_left) if weights[u] <= tau}
    dense = {u for u in range(graph.n_left) if weights[u] > tau}
    return sparse, dense, weights


def hybrid_count_all(
    graph: BipartiteGraph,
    h_max: int = 10,
    samples: int = 100_000,
    seed: "int | None | np.random.Generator" = None,
    estimator: str = "zigzag",
    tau: "float | None" = None,
    quantile: float = 0.9,
    pivot: str = "product",
    workers: "int | None" = None,
    obs: "MetricsRegistry | None" = None,
) -> BicliqueCounts:
    """Hybrid EP + sampling estimate of all (p, q) counts up to ``h_max``.

    ``estimator`` selects the dense-region algorithm: ``"zigzag"`` (the
    paper's EP/ZZ) or ``"zigzag++"`` (EP/ZZ++).  ``workers`` parallelises
    both regions: the exact sparse-region EPivoter pass merges integer
    partials, and the dense-region sampler uses per-unit RNG streams, so
    results for any worker count match the serial run exactly —
    bit-identical given the same seed.

    ``obs`` records the partition sizes (``hybrid.sparse_vertices`` /
    ``hybrid.dense_vertices``) and per-region time (phase timers
    ``hybrid.partition`` / ``hybrid.exact_sparse`` /
    ``hybrid.estimate_dense``) on top of the engines' own counters.
    """
    if estimator not in ("zigzag", "zigzag++"):
        raise ValueError("estimator must be 'zigzag' or 'zigzag++'")
    reg = obs if obs is not None else NULL_REGISTRY
    ordered = graph if graph.is_degree_ordered() else graph.degree_ordered()[0]
    with reg.phase("hybrid.partition"):
        sparse, dense, _ = partition_graph(ordered, tau=tau, quantile=quantile)
    reg.gauge("hybrid.sparse_vertices", len(sparse))
    reg.gauge("hybrid.dense_vertices", len(dense))
    counts = BicliqueCounts(h_max, h_max)
    if sparse:
        with reg.phase("hybrid.exact_sparse"):
            exact_part = EPivoter(ordered, pivot=pivot).count_all(
                h_max, h_max, left_region=sparse, workers=workers, obs=obs
            )
        for p, q, value in exact_part.items():
            counts.add(p, q, value)
    if dense:
        estimate_fn = zigzag_count_all if estimator == "zigzag" else zigzagpp_count_all
        with reg.phase("hybrid.estimate_dense"):
            # The seed passes through untouched so an all-dense hybrid run
            # reproduces the pure sampler's estimate bit for bit.
            sampled_part = estimate_fn(
                ordered, h_max=h_max, samples=samples, seed=seed,
                left_region=dense, obs=obs, workers=workers,
            )
        for p, q, value in sampled_part.items():
            counts.add(p, q, value)
    return counts


def hybrid_count_single(
    graph: BipartiteGraph,
    p: int,
    q: int,
    samples: int = 100_000,
    seed: "int | None | np.random.Generator" = None,
    estimator: str = "zigzag",
    tau: "float | None" = None,
    quantile: float = 0.9,
    workers: "int | None" = None,
    obs: "MetricsRegistry | None" = None,
    trace: "Trace" = NULL_TRACE,
) -> float:
    """Hybrid estimate of one (p, q) count (the §5 remark).

    EPivoter counts the sparse-region contribution exactly with single-pair
    pruning bounds; the dense region is sampled at the single relevant
    zigzag level only.
    """
    if estimator not in ("zigzag", "zigzag++"):
        raise ValueError("estimator must be 'zigzag' or 'zigzag++'")
    if min(p, q) < 1:
        raise ValueError("p and q must be positive")
    reg = obs if obs is not None else NULL_REGISTRY
    ordered = graph if graph.is_degree_ordered() else graph.degree_ordered()[0]
    with reg.phase("hybrid.partition"), trace.span("partition"):
        sparse, dense, _ = partition_graph(ordered, tau=tau, quantile=quantile)
    reg.gauge("hybrid.sparse_vertices", len(sparse))
    reg.gauge("hybrid.dense_vertices", len(dense))
    total = 0.0
    if sparse:
        with reg.phase("hybrid.exact_sparse"), trace.span(
            "exact_sparse", vertices=len(sparse)
        ):
            total += EPivoter(ordered).count_all(
                p, q, left_region=sparse, workers=workers, obs=obs
            )[p, q]
    if dense:
        # Import locally to avoid a cycle at module import time.
        from repro.core.zigzag import _ZigZag, _ZigZagPP, star_counts
        from repro.core.counts import BicliqueCounts

        with reg.phase("hybrid.estimate_dense"), trace.span(
            "estimate_dense", vertices=len(dense)
        ):
            if min(p, q) == 1:
                star_part = BicliqueCounts(max(p, 2), max(q, 2))
                star_counts(ordered, star_part, dense)
                total += star_part[p, q]
            else:
                engine_cls = _ZigZag if estimator == "zigzag" else _ZigZagPP
                level = min(p, q) - 1 if estimator == "zigzag" else min(p, q)
                engine = engine_cls(
                    ordered,
                    max(p, q),
                    samples,
                    seed,
                    levels=[level],
                    unit_filter=dense,
                    obs=obs,
                    workers=workers,
                )
                total += engine.run()[p, q]
    return total
