"""Matrix engine: closed-form exact counts for small (p, q) shapes.

The hottest production shapes — butterflies (2, 2) and generally
p, q <= 3 — have closed forms as a handful of sparse products over the
CSR buffers, so they never need the EPivoter enumeration tree.  With
``A`` the biadjacency matrix and ``M = A @ A.T`` the left-side pair
matrix (``M[u, u'] = |N(u) ∩ N(u')|``, ``M[u, u] = d(u)``):

* ``min(p, q) == 1`` — stars: ``sum(C(d, q))`` over the anchoring side's
  degree sequence (no matrix needed);
* ``p == 2`` — every left pair with ``m`` common neighbors closes
  ``C(m, q)`` bicliques, so the count is
  ``(sum_over_stored_entries C(M, q) - sum_u C(d(u), q)) / 2``
  (strip the diagonal, halve the symmetric double count);
* ``q == 2`` — the transpose-side twin over ``A.T @ A``;
* ``(3, 3)`` — an anchored pass: for each left vertex ``u`` (the
  largest of its triple), candidates are ``u' < u`` with
  ``M[u, u'] >= 3``; a 0/1 membership matrix ``B`` of candidates against
  ``N(u)`` gives ``P = B @ B.T`` with
  ``P[c, c'] = |N(c) ∩ N(c') ∩ N(u)|``, and the anchor contributes
  ``sum_{c < c'} C(P[c, c'], 3)``.

Exactness: matrix entries are int64 intersection sizes (bounded by max
degree); binomial folds promote to Python integers per distinct value
(:func:`repro.graph.sparse.binomial_sum`), and the dense ``(3, 3)``
matmul runs in float64, exact for integers below ``2**53`` — far above
any reachable overlap count.  Every cell is bit-identical to EPivoter;
the golden-counts suite pins this.

Shape support is :func:`matrix_supported`; availability (scipy present)
is :func:`matrix_available`.  The service planner prices this engine
from :func:`repro.graph.sparse.pair_work` before routing to it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.counts import BicliqueCounts
from repro.graph.bigraph import LEFT, RIGHT, BipartiteGraph
from repro.graph.sparse import (
    as_int64,
    biadjacency,
    binomial_sum,
    histogram_binomial_fold,
    overlap_histogram,
    pair_matrix,
    pair_work,
    sparse_available,
)
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import NULL_TRACE
from repro.utils.combinatorics import binomial, stars_side_counts

if TYPE_CHECKING:
    from repro.obs.trace import Trace

__all__ = [
    "matrix_available",
    "matrix_supported",
    "matrix_count_single",
    "matrix_count_all",
    "MATRIX_MAX_P",
    "MATRIX_MAX_Q",
]

#: Largest all-pairs extent the engine can fill (every cell with
#: ``p, q <= 3`` has a closed form; beyond that EPivoter takes over).
MATRIX_MAX_P = 3
MATRIX_MAX_Q = 3

#: Dense membership matrices in the (3, 3) anchored pass are capped at
#: this many cells per anchor; larger anchors fall back to a sparse
#: product at the same exactness.
_DENSE_CELL_CAP = 16_000_000


def matrix_available() -> bool:
    """True iff the engine can run here (scipy/numpy importable)."""
    return sparse_available()


def matrix_supported(p: int, q: int) -> bool:
    """True iff cell ``(p, q)`` has a closed form in this engine."""
    if p < 1 or q < 1:
        return False
    return min(p, q) <= 2 or (p == 3 and q == 3)


def _require(p: int, q: int) -> None:
    if not matrix_supported(p, q):
        raise ValueError(
            f"matrix engine has no closed form for ({p}, {q}); "
            "supported shapes are min(p, q) <= 2 and (3, 3)"
        )
    if not matrix_available():
        raise RuntimeError("matrix engine requires scipy; use EPivoter")


def _pair_side_count(graph: BipartiteGraph, side: int, k: int) -> int:
    """Bicliques with exactly two vertices on ``side`` and ``k`` opposite.

    ``sum_{pairs on side} C(common_neighbors, k)`` — a binomial fold
    over the off-diagonal overlap histogram.  The histogram is the same
    summary :class:`repro.service.mutation.DeltaTotals` maintains per
    edge, so the from-scratch and incremental answers share one code
    path (and are bit-identical by construction).
    """
    return histogram_binomial_fold(overlap_histogram(graph, side), k)


def _count_33(graph: BipartiteGraph, obs: MetricsRegistry = NULL_REGISTRY) -> int:
    """Exact (3, 3)-biclique count via the anchored per-vertex pass."""
    import numpy as np

    # Anchor on whichever side has the cheaper pair matrix; (3, 3) is
    # symmetric, so counting over the swapped view is the same number.
    if pair_work(graph, LEFT) > pair_work(graph, RIGHT):
        graph = graph.swap_sides()
    pairs = pair_matrix(graph, LEFT)
    indptr_l, indices_l, _, _ = graph.csr_buffers()
    indptr = as_int64(indptr_l)
    indices = as_int64(indices_l)
    pair_indptr, pair_indices, pair_data = pairs.indptr, pairs.indices, pairs.data

    adjacency = None  # built lazily, only if an anchor needs the sparse path
    total = 0
    anchors = 0
    for u in range(graph.n_left):
        cols_u = indices[indptr[u] : indptr[u + 1]]
        if cols_u.size < 3:
            continue
        row = slice(pair_indptr[u], pair_indptr[u + 1])
        row_ids = pair_indices[row]
        row_vals = pair_data[row]
        # The anchor is the largest left vertex of its triple, and any
        # triple member shares >= 3 right vertices with the anchor.
        candidates = row_ids[(row_ids < u) & (row_vals >= 3)]
        if candidates.size < 2:
            continue
        anchors += 1
        if candidates.size * cols_u.size <= _DENSE_CELL_CAP:
            starts = indptr[candidates]
            lengths = indptr[candidates + 1] - starts
            flat_rows = np.repeat(np.arange(candidates.size), lengths)
            within = np.arange(int(lengths.sum())) - np.repeat(
                np.cumsum(lengths) - lengths, lengths
            )
            flat = indices[np.repeat(starts, lengths) + within]
            # Membership of each candidate neighbor in N(u): searchsorted
            # against the sorted cols_u, then verify the hit.
            position = np.searchsorted(cols_u, flat)
            clipped = np.minimum(position, cols_u.size - 1)
            hit = cols_u[clipped] == flat
            membership = np.zeros(
                (candidates.size, cols_u.size), dtype=np.float64
            )
            membership[flat_rows[hit], position[hit]] = 1.0
            # float64 matmul is exact here: overlaps are bounded by the
            # max degree, nowhere near 2**53.
            overlaps = (membership @ membership.T).astype(np.int64)
            fold_all = binomial_sum(overlaps.ravel(), 3)
            fold_diag = binomial_sum(np.ascontiguousarray(np.diagonal(overlaps)), 3)
            total += (fold_all - fold_diag) // 2
        else:  # pragma: no cover - exercised only by huge dense anchors
            import scipy.sparse as sp

            if adjacency is None:
                adjacency = biadjacency(graph)
            restricted = adjacency[candidates][:, cols_u]
            upper = sp.triu(restricted @ restricted.T, k=1).tocoo()
            total += binomial_sum(upper.data, 3)
    obs.incr("matrix.anchors_33", anchors)
    return total


def matrix_count_single(
    graph: BipartiteGraph,
    p: int,
    q: int,
    obs: MetricsRegistry = NULL_REGISTRY,
    trace: "Trace" = NULL_TRACE,
) -> int:
    """Exact number of (p, q)-bicliques for a supported shape.

    Raises ``ValueError`` for shapes outside :func:`matrix_supported`
    and ``RuntimeError`` when scipy is unavailable.  Always returns an
    exact Python integer, bit-identical to EPivoter.
    """
    _require(p, q)
    obs.incr("matrix.runs")
    with obs.phase("matrix.count"), trace.span("closed_form", shape=f"{p}x{q}"):
        if p == 1 and q == 1:
            return graph.num_edges
        if p == 1:
            return stars_side_counts(graph.degrees_left(), q)
        if q == 1:
            return stars_side_counts(graph.degrees_right(), p)
        if p == 3 and q == 3:
            return _count_33(graph, obs=obs)
        if p == 2 and q == 2:
            # Both formulations are valid; take the cheaper pair matrix.
            side = (
                LEFT
                if pair_work(graph, LEFT) <= pair_work(graph, RIGHT)
                else RIGHT
            )
            return _pair_side_count(graph, side, 2)
        if p == 2:
            return _pair_side_count(graph, LEFT, q)
        return _pair_side_count(graph, RIGHT, p)


def matrix_count_all(
    graph: BipartiteGraph,
    max_p: int = MATRIX_MAX_P,
    max_q: int = MATRIX_MAX_Q,
    obs: MetricsRegistry = NULL_REGISTRY,
) -> BicliqueCounts:
    """Exact counts for every cell ``p <= max_p, q <= max_q``.

    Only extents where every cell has a closed form are accepted
    (``max_p, max_q <= 3``); each pair matrix is built once and folded
    for all the cells that read it.
    """
    if max_p > MATRIX_MAX_P or max_q > MATRIX_MAX_Q:
        raise ValueError(
            f"matrix engine fills at most ({MATRIX_MAX_P}, {MATRIX_MAX_Q}); "
            f"requested ({max_p}, {max_q})"
        )
    _require(min(max_p, 2), min(max_q, 2))
    obs.incr("matrix.runs")
    with obs.phase("matrix.count"):
        counts = BicliqueCounts(max_p, max_q)
        degrees_left = graph.degrees_left()
        degrees_right = graph.degrees_right()
        for q in range(1, max_q + 1):
            counts.set(1, q, stars_side_counts(degrees_left, q))
        for p in range(2, max_p + 1):
            counts.set(p, 1, stars_side_counts(degrees_right, p))
        if max_p >= 2 and max_q >= 2:
            pairs_left = pair_matrix(graph, LEFT)
            diag = {q: sum(binomial(d, q) for d in degrees_left) for q in range(2, max_q + 1)}
            for q in range(2, max_q + 1):
                counts.set(
                    2, q, (binomial_sum(pairs_left.data, q) - diag[q]) // 2
                )
        if max_p >= 3 and max_q >= 2:
            pairs_right = pair_matrix(graph, RIGHT)
            for p in range(3, max_p + 1):
                diagonal = sum(binomial(d, p) for d in degrees_right)
                counts.set(
                    p, 2, (binomial_sum(pairs_right.data, p) - diagonal) // 2
                )
        if max_p >= 3 and max_q >= 3:
            counts.set(3, 3, _count_33(graph, obs=obs))
        return counts
