"""Shared substrates: combinatorics, RNG, timing, max-flow, parallelism."""

from repro.utils.combinatorics import binomial, binomial_row, falling_factorial
from repro.utils.maxflow import DinicMaxFlow
from repro.utils.parallel import (
    chunk_root_edges,
    merge_counts,
    merge_local_counts,
    resolve_workers,
    root_edge_weight,
    run_chunked,
)
from repro.utils.rng import as_generator, spawn
from repro.utils.timer import Stopwatch, timed

__all__ = [
    "binomial",
    "binomial_row",
    "falling_factorial",
    "DinicMaxFlow",
    "as_generator",
    "spawn",
    "Stopwatch",
    "timed",
    "chunk_root_edges",
    "merge_counts",
    "merge_local_counts",
    "resolve_workers",
    "root_edge_weight",
    "run_chunked",
]
