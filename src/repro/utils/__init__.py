"""Shared substrates: combinatorics, RNG plumbing, timing, max-flow."""

from repro.utils.combinatorics import binomial, binomial_row, falling_factorial
from repro.utils.maxflow import DinicMaxFlow
from repro.utils.rng import as_generator, spawn
from repro.utils.timer import Stopwatch, timed

__all__ = [
    "binomial",
    "binomial_row",
    "falling_factorial",
    "DinicMaxFlow",
    "as_generator",
    "spawn",
    "Stopwatch",
    "timed",
]
