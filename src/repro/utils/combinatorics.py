"""Exact integer combinatorics used by the counting algorithms.

All biclique counts in this library are exact Python integers; the counting
formulas of EPivoter (Algorithm 3) and the zigzag estimators reduce to sums
of products of binomial coefficients.  The binomial table is memoised
because the recursion evaluates the same small coefficients millions of
times.
"""

from __future__ import annotations

import math
from functools import lru_cache

__all__ = [
    "binomial",
    "binomial_row",
    "falling_factorial",
    "stars_side_counts",
]


@lru_cache(maxsize=None)
def binomial(n: int, k: int) -> int:
    """Return ``C(n, k)`` as an exact integer; 0 outside the valid range.

    Unlike :func:`math.comb`, negative ``n`` or ``k`` yield 0 instead of
    raising, which lets counting formulas be written without bound checks.
    """
    if k < 0 or n < 0 or k > n:
        return 0
    return math.comb(n, k)


def binomial_row(n: int, k_max: int) -> list[int]:
    """Return ``[C(n, 0), C(n, 1), ..., C(n, k_max)]`` as exact integers."""
    if n < 0 or k_max < 0:
        raise ValueError("binomial_row requires n >= 0 and k_max >= 0")
    row = [1]
    value = 1
    for k in range(1, k_max + 1):
        if k > n:
            value = 0
        else:
            value = value * (n - k + 1) // k
        row.append(value)
    return row


def falling_factorial(n: int, k: int) -> int:
    """Return ``n * (n-1) * ... * (n-k+1)``; 1 when ``k == 0``."""
    if k < 0:
        raise ValueError("falling_factorial requires k >= 0")
    result = 1
    for i in range(k):
        result *= n - i
    return result


def stars_side_counts(degrees: list[int], size: int) -> int:
    """Count stars: the number of (1, size)-bicliques rooted on one side.

    A (1, q)-biclique is a vertex together with ``q`` of its neighbors, so
    the total is ``sum(C(d, q))`` over the side's degree sequence.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    return sum(binomial(d, size) for d in degrees)
