"""Dinic maximum-flow solver.

Substrate for the exact (p,q)-biclique densest-subgraph algorithm
(Mitzenmacher et al., KDD'15 — reference [22] of the paper), which reduces
the density test "is there a subgraph with (p,q)-biclique density > g?"
to a min-cut on a biclique–vertex incidence network.  We implement Dinic's
algorithm from scratch so the library has no graph-library dependency.

Capacities are floats; the densest-subgraph driver keeps them rational
multiples of a common denominator so the binary search terminates exactly.
"""

from __future__ import annotations

from collections import deque

__all__ = ["DinicMaxFlow"]

_EPS = 1e-12


class DinicMaxFlow:
    """Max-flow on a directed graph with ``n`` nodes (adjacency lists).

    Example
    -------
    >>> flow = DinicMaxFlow(4)
    >>> flow.add_edge(0, 1, 3.0)
    >>> flow.add_edge(1, 2, 2.0)
    >>> flow.add_edge(2, 3, 4.0)
    >>> flow.max_flow(0, 3)
    2.0
    """

    def __init__(self, num_nodes: int):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        # Edge arrays: to[i], cap[i]; edge i^1 is the reverse of edge i.
        self._to: list[int] = []
        self._cap: list[float] = []
        self._head: list[list[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add a directed edge ``u -> v``; return its edge id."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise IndexError("edge endpoint out of range")
        edge_id = len(self._to)
        self._to.append(v)
        self._cap.append(float(capacity))
        self._head[u].append(edge_id)
        self._to.append(u)
        self._cap.append(0.0)
        self._head[v].append(edge_id + 1)
        return edge_id

    def _bfs_levels(self, source: int, sink: int) -> "list[int] | None":
        levels = [-1] * self.num_nodes
        levels[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for edge_id in self._head[u]:
                v = self._to[edge_id]
                if self._cap[edge_id] > _EPS and levels[v] < 0:
                    levels[v] = levels[u] + 1
                    queue.append(v)
        return levels if levels[sink] >= 0 else None

    def _dfs_push(
        self,
        u: int,
        sink: int,
        pushed: float,
        levels: list[int],
        iters: list[int],
    ) -> float:
        if u == sink:
            return pushed
        while iters[u] < len(self._head[u]):
            edge_id = self._head[u][iters[u]]
            v = self._to[edge_id]
            if self._cap[edge_id] > _EPS and levels[v] == levels[u] + 1:
                flow = self._dfs_push(
                    v, sink, min(pushed, self._cap[edge_id]), levels, iters
                )
                if flow > _EPS:
                    self._cap[edge_id] -= flow
                    self._cap[edge_id ^ 1] += flow
                    return flow
            iters[u] += 1
        return 0.0

    def max_flow(self, source: int, sink: int) -> float:
        """Compute the maximum flow from ``source`` to ``sink``."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0.0
        while True:
            levels = self._bfs_levels(source, sink)
            if levels is None:
                return total
            iters = [0] * self.num_nodes
            while True:
                pushed = self._dfs_push(source, sink, float("inf"), levels, iters)
                if pushed <= _EPS:
                    break
                total += pushed

    def min_cut_side(self, source: int) -> set[int]:
        """After :meth:`max_flow`, return the source side of a min cut."""
        side = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for edge_id in self._head[u]:
                v = self._to[edge_id]
                if self._cap[edge_id] > _EPS and v not in side:
                    side.add(v)
                    queue.append(v)
        return side
