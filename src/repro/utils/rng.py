"""Deterministic random number helpers.

Every stochastic component of the library (generators, samplers,
estimators) accepts either an integer seed or a ready-made
:class:`numpy.random.Generator`; this module centralises the coercion so
experiments are reproducible bit-for-bit from a single seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn"]

SeedLike = "int | None | np.random.Generator"


def as_generator(seed: "int | None | np.random.Generator") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh OS-seeded generator; an existing generator is
    returned unchanged so callers can thread one RNG through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used by multi-run experiments (e.g. the variance study of Fig. 10) so
    each run is independent yet reproducible.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
