"""Deterministic random number helpers.

Every stochastic component of the library (generators, samplers,
estimators) accepts either an integer seed or a ready-made
:class:`numpy.random.Generator`; this module centralises the coercion so
experiments are reproducible bit-for-bit from a single seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "as_seed_sequence", "spawn", "spawn_sequences"]

SeedLike = "int | None | np.random.Generator"


def as_generator(seed: "int | None | np.random.Generator") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh OS-seeded generator; an existing generator is
    returned unchanged so callers can thread one RNG through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_seed_sequence(
    seed: "int | None | np.random.Generator | np.random.SeedSequence",
) -> np.random.SeedSequence:
    """Coerce ``seed`` into a :class:`numpy.random.SeedSequence`.

    Seed sequences are the root of the estimators' *per-unit stream*
    scheme: spawned children are deterministic functions of the root
    entropy and the child index, independent of how the units are later
    chunked over worker processes — which is what makes parallel sampling
    runs bit-identical to serial ones.

    A :class:`~numpy.random.Generator` is consumed for entropy (advancing
    its state), so threading one generator through successive estimation
    rounds still yields fresh-but-reproducible streams per round.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        entropy = seed.integers(0, 2**63 - 1, size=4, dtype=np.int64)
        return np.random.SeedSequence([int(word) for word in entropy])
    return np.random.SeedSequence(seed)


def spawn_sequences(
    seed: "int | None | np.random.Generator | np.random.SeedSequence",
    count: int,
) -> list[np.random.SeedSequence]:
    """Spawn ``count`` independent child seed sequences from ``seed``.

    Child ``i`` depends only on the root entropy and ``i``, so the
    mapping ``unit -> stream`` survives any chunking or process fan-out.
    The children are small picklable objects, cheap to ship in worker
    payloads.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return as_seed_sequence(seed).spawn(count) if count else []


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used by multi-run experiments (e.g. the variance study of Fig. 10) so
    each run is independent yet reproducible.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
