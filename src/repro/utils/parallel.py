"""Process-parallel execution of edge-rooted traversals.

EPivoter roots one independent search at every edge of the degree-ordered
graph, so the enumeration tree is embarrassingly parallel at the root
level: partition the root edges, run one traversal per partition in a
worker process, and sum the partial results.  Because every biclique is
represented by exactly one leaf under exactly one root (Theorem 3.5),
the partial counts add without overlap — the same argument that powers
the hybrid algorithm's ``left_region`` split.

This module is engine-agnostic: it knows how to weigh and chunk root
edges, drive a :class:`concurrent.futures.ProcessPoolExecutor`, and merge
partial results (exact-integer :class:`BicliqueCounts` matrices or
per-vertex local count vectors).  The traversal workers themselves live
next to the engines (e.g. :mod:`repro.core.epivoter`) so they stay
picklable module-level functions.
"""

from __future__ import annotations

import heapq
import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

if TYPE_CHECKING:  # imported for annotations only: keeps this module free of
    # repro imports, so engines can depend on it without cycles.
    from repro.core.counts import BicliqueCounts
    from repro.graph.bigraph import BipartiteGraph
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "resolve_workers",
    "root_edge_weight",
    "chunk_root_edges",
    "run_chunked",
    "split_worker_results",
    "merge_counts",
    "merge_local_counts",
]

T = TypeVar("T")
R = TypeVar("R")

#: Chunks handed to the pool per worker.  More chunks than workers lets the
#: executor rebalance dynamically when one chunk turns out heavier than its
#: static weight estimate suggested.
CHUNKS_PER_WORKER = 4


def resolve_workers(workers: "int | None") -> int:
    """Normalise a ``workers`` argument to a concrete process count.

    ``None`` and ``1`` mean serial (the exact code path a single process
    would run); ``0`` means "one per CPU"; any other positive integer is
    taken literally.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise ValueError("workers must be None or a non-negative integer")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def root_edge_weight(graph: BipartiteGraph, u: int, v: int) -> int:
    """Estimated traversal cost of the search rooted at edge ``e(u, v)``.

    The root's candidate sets are ``N^{>u}(v)`` and ``N^{>v}(u)``; the
    first recursion level inspects their full product, so the product of
    their sizes is a cheap degree-based proxy for subtree cost (the same
    quantity the hybrid partitioner sums per vertex in Definition 5.1).
    """
    return len(graph.higher_neighbors_of_right(v, u)) * len(
        graph.higher_neighbors_of_left(u, v)
    )


def chunk_root_edges(
    graph: BipartiteGraph,
    roots: Sequence[tuple[int, int]],
    n_chunks: int,
) -> list[list[tuple[int, int]]]:
    """Partition root edges into at most ``n_chunks`` balanced chunks.

    Edges are sorted by estimated cost descending and assigned greedily to
    the least-loaded chunk (LPT scheduling), so the heavy roots — which on
    skewed graphs dominate the runtime — spread across workers instead of
    landing in one.  The assignment is deterministic: ties break on chunk
    index, and the edge order within a chunk is cost-descending.

    Returns only non-empty chunks; their concatenation is a permutation of
    ``roots``.
    """
    roots = list(roots)
    if n_chunks <= 1 or len(roots) <= 1:
        return [roots] if roots else []
    n_chunks = min(n_chunks, len(roots))
    weighted = sorted(
        roots,
        key=lambda e: (-root_edge_weight(graph, e[0], e[1]), e),
    )
    chunks: list[list[tuple[int, int]]] = [[] for _ in range(n_chunks)]
    heap = [(0, index) for index in range(n_chunks)]
    heapq.heapify(heap)
    for edge in weighted:
        load, index = heapq.heappop(heap)
        chunks[index].append(edge)
        # +1 keeps zero-weight edges moving round-robin instead of piling
        # into the first chunk.
        heapq.heappush(
            heap, (load + root_edge_weight(graph, edge[0], edge[1]) + 1, index)
        )
    return [chunk for chunk in chunks if chunk]


def run_chunked(
    worker: Callable[[T], R],
    payloads: Sequence[T],
    workers: int,
) -> list[R]:
    """Map ``worker`` over ``payloads``, in processes when it pays off.

    With one worker or one payload the map runs in-process (identical to
    the serial path, no pickling).  ``worker`` must be a module-level
    function and the payloads picklable.
    """
    payloads = list(payloads)
    if workers <= 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=min(workers, len(payloads))) as pool:
        return list(pool.map(worker, payloads))


def split_worker_results(
    parts: "Sequence[tuple[R, dict | None]]",
    obs: "MetricsRegistry | None" = None,
) -> list[R]:
    """Unzip ``(result, stats)`` worker returns; record stats into ``obs``.

    Chunk workers return their payload's result plus an optional stat
    dict (wall time, roots handled, counters).  The stats ride back with
    the results and merge here into a single registry: each worker dict
    is kept verbatim for skew inspection (``registry.workers``) and its
    counters fold into the global totals, so the merged counters of an
    ``N``-worker run equal a serial run's (the chunks partition the
    search tree).  With ``obs`` absent or disabled the stats are dropped.
    """
    results: list[R] = []
    track = obs is not None and obs.enabled
    for index, (result, stats) in enumerate(parts):
        results.append(result)
        if track and stats is not None:
            stats = dict(stats)
            stats.setdefault("worker", index)
            obs.record_worker(stats)
    return results


def merge_counts(parts: Iterable[BicliqueCounts]) -> BicliqueCounts:
    """Cell-wise sum of partial count matrices (exact for exact inputs).

    Uses :meth:`BicliqueCounts.merged_with`, so integer cells stay Python
    integers — parallel counting loses no exactness.
    """
    iterator = iter(parts)
    try:
        merged = next(iterator)
    except StopIteration:
        raise ValueError("merge_counts needs at least one partial result")
    for part in iterator:
        merged = merged.merged_with(part)
    return merged


def merge_local_counts(
    parts: Iterable[dict[tuple[int, int], tuple[list[int], list[int]]]],
) -> dict[tuple[int, int], tuple[list[int], list[int]]]:
    """Element-wise sum of per-vertex local count partials.

    Every part must map the same (p, q) pairs to ``(left, right)`` count
    vectors of identical lengths (one entry per vertex of the shared
    graph).
    """
    parts = list(parts)
    if not parts:
        raise ValueError("merge_local_counts needs at least one partial result")
    merged = {
        pair: ([0] * len(left), [0] * len(right))
        for pair, (left, right) in parts[0].items()
    }
    for part in parts:
        if part.keys() != merged.keys():
            raise ValueError("partial local counts disagree on the (p, q) pairs")
        for pair, (left, right) in part.items():
            merged_left, merged_right = merged[pair]
            for index, value in enumerate(left):
                merged_left[index] += value
            for index, value in enumerate(right):
                merged_right[index] += value
    return merged
