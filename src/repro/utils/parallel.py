"""Process-parallel execution of edge-rooted traversals.

EPivoter roots one independent search at every edge of the degree-ordered
graph, so the enumeration tree is embarrassingly parallel at the root
level: partition the root edges, run one traversal per partition in a
worker process, and sum the partial results.  Because every biclique is
represented by exactly one leaf under exactly one root (Theorem 3.5),
the partial counts add without overlap — the same argument that powers
the hybrid algorithm's ``left_region`` split.

This module is engine-agnostic: it knows how to weigh and chunk root
edges, drive a :class:`concurrent.futures.ProcessPoolExecutor`, and merge
partial results (exact-integer :class:`BicliqueCounts` matrices or
per-vertex local count vectors).  The traversal workers themselves live
next to the engines (e.g. :mod:`repro.core.epivoter`) so they stay
picklable module-level functions.

Graph shipping
--------------
The shared graph travels to each worker **once per pool**, not once per
chunk.  :func:`run_chunked` takes the graph separately from the chunk
payloads and publishes its CSR buffers through the pool initializer:

* **shared memory** (default when :mod:`multiprocessing.shared_memory`
  is usable): the parent copies the four CSR buffers into one segment;
  each worker maps the segment and wraps zero-copy ``memoryview`` rows
  with :meth:`BipartiteGraph.from_csr`.  Bytes cross the process
  boundary once *in total*, regardless of worker or chunk count.
* **pickle-by-buffer** fallback: the graph rides in the initializer
  arguments and is unpickled once per worker (``__reduce__`` ships raw
  CSR bytes, no re-sort/re-validate).

Chunk workers fetch the graph with :func:`worker_graph` and may memoise
derived state (e.g. a built engine) in :func:`worker_cache`, which lives
for the pool's lifetime.  ``obs`` counters record how many ships
happened (``parallel.graph_ships`` — asserted to be 1 by the test
suite), the bytes shipped, and per-worker warm-up time.

Set ``REPRO_PARALLEL_SHIP=pickle`` to force the fallback (e.g. on
platforms with a broken ``/dev/shm``).
"""

from __future__ import annotations

import heapq
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

from repro.graph.bigraph import BipartiteGraph

if TYPE_CHECKING:  # imported for annotations only
    from repro.core.counts import BicliqueCounts
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "resolve_workers",
    "root_edge_weight",
    "root_edge_weights",
    "chunk_root_edges",
    "split_evenly",
    "run_chunked",
    "GraphPool",
    "worker_graph",
    "worker_cache",
    "worker_warmup_seconds",
    "split_worker_results",
    "merge_counts",
    "merge_local_counts",
]

T = TypeVar("T")
R = TypeVar("R")

#: Chunks handed to the pool per worker.  More chunks than workers lets the
#: executor rebalance dynamically when one chunk turns out heavier than its
#: static weight estimate suggested.
CHUNKS_PER_WORKER = 4

#: ``auto`` ships through shared memory when available, ``pickle`` forces
#: the initargs fallback.
_SHIP_MODE_ENV = "REPRO_PARALLEL_SHIP"


def resolve_workers(workers: "int | None") -> int:
    """Normalise a ``workers`` argument to a concrete process count.

    ``None`` and ``1`` mean serial (the exact code path a single process
    would run); ``0`` means "one per CPU"; any other positive integer is
    taken literally.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise ValueError("workers must be None or a non-negative integer")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


# ----------------------------------------------------------------------
# Root-edge weighing and chunking
# ----------------------------------------------------------------------


def root_edge_weight(graph: BipartiteGraph, u: int, v: int) -> int:
    """Estimated traversal cost of the search rooted at edge ``e(u, v)``.

    The root's candidate sets are ``N^{>u}(v)`` and ``N^{>v}(u)``; the
    first recursion level inspects their full product, so the product of
    their sizes is a cheap degree-based proxy for subtree cost (the same
    quantity the hybrid partitioner sums per vertex in Definition 5.1).
    Pure binary searches over the CSR rows — nothing is materialised.
    """
    return graph.num_higher_neighbors_of_right(v, u) * graph.num_higher_neighbors_of_left(
        u, v
    )


def _root_edge_weights(
    graph: BipartiteGraph, roots: Sequence[tuple[int, int]]
) -> "dict[tuple[int, int], int]":
    """All root weights at once: one batched searchsorted per side.

    The per-edge weight is the product of two "neighbours strictly
    greater than" counts, each a binary search over a sorted CSR row.
    Keying every adjacency entry as ``row * stride + value`` turns the
    whole batch into two global ``searchsorted`` calls (the same
    offset-keyed membership trick the frontier kernels use), so weighing
    the ~E roots of a full count costs two vectorised passes instead of
    2E Python-level bisections.  Falls back to the scalar loop when
    numpy is unavailable.
    """
    try:
        import numpy as np
    except ImportError:
        return {
            edge: root_edge_weight(graph, edge[0], edge[1]) for edge in roots
        }
    indptr_l, indices_l, indptr_r, indices_r = (
        np.frombuffer(buf, dtype=np.int64)
        for buf in graph.csr_buffers()
    )
    stride = max(graph.n_left, graph.n_right, 1) + 1
    us = np.fromiter((e[0] for e in roots), dtype=np.int64, count=len(roots))
    vs = np.fromiter((e[1] for e in roots), dtype=np.int64, count=len(roots))
    keyed_l = (
        np.repeat(np.arange(graph.n_left, dtype=np.int64), np.diff(indptr_l))
        * stride
        + indices_l
    )
    keyed_r = (
        np.repeat(np.arange(graph.n_right, dtype=np.int64), np.diff(indptr_r))
        * stride
        + indices_r
    )
    # |N^{>v}(u)|: entries of u's row past v, via one keyed search.
    hi_l = indptr_l[us + 1] - np.searchsorted(keyed_l, us * stride + vs, side="right")
    hi_r = indptr_r[vs + 1] - np.searchsorted(keyed_r, vs * stride + us, side="right")
    weights = hi_l * hi_r
    return {edge: int(weights[i]) for i, edge in enumerate(roots)}


def root_edge_weights(
    graph: BipartiteGraph, roots: Sequence[tuple[int, int]]
) -> list[int]:
    """Weights of ``roots`` in order, via the batched keyed-search pass.

    The public face of :func:`_root_edge_weights`: one list entry per
    root, aligned with the input order, so callers that need weights in
    edge-id order (the cluster coordinator's contiguous range
    partitioner) can weigh the whole edge set in two vectorised
    ``searchsorted`` passes instead of ``2E`` scalar bisections.
    """
    roots = list(roots)
    weights = _root_edge_weights(graph, roots)
    return [weights[edge] for edge in roots]


def chunk_root_edges(
    graph: BipartiteGraph,
    roots: Sequence[tuple[int, int]],
    n_chunks: int,
) -> list[list[tuple[int, int]]]:
    """Partition root edges into at most ``n_chunks`` balanced chunks.

    Edges are sorted by estimated cost descending and assigned greedily to
    the least-loaded chunk (LPT scheduling), so the heavy roots — which on
    skewed graphs dominate the runtime — spread across workers instead of
    landing in one.  The assignment is deterministic: ties break on chunk
    index, and the edge order within a chunk is cost-descending.

    Each chunk doubles as the *initial frontier* of one worker's
    traversal: the frontier engine turns the whole chunk into its
    level-0 batch in one shot, so balanced chunks also mean balanced
    first-level arenas.

    Returns only non-empty chunks; their concatenation is a permutation of
    ``roots``.
    """
    roots = list(roots)
    if n_chunks <= 1 or len(roots) <= 1:
        return [roots] if roots else []
    n_chunks = min(n_chunks, len(roots))
    # Weigh all roots in one vectorised pass; the old per-comparison
    # recomputation made the LPT pass the dominant cost on large graphs.
    weights = _root_edge_weights(graph, roots)
    weighted = sorted(roots, key=lambda e: (-weights[e], e))
    chunks: list[list[tuple[int, int]]] = [[] for _ in range(n_chunks)]
    heap = [(0, index) for index in range(n_chunks)]
    heapq.heapify(heap)
    for edge in weighted:
        load, index = heapq.heappop(heap)
        chunks[index].append(edge)
        # +1 keeps zero-weight edges moving round-robin instead of piling
        # into the first chunk.
        heapq.heappush(heap, (load + weights[edge] + 1, index))
    return [chunk for chunk in chunks if chunk]


def split_evenly(items: Sequence[T], n_chunks: int) -> list[list[T]]:
    """Partition ``items`` into at most ``n_chunks`` contiguous, balanced runs.

    Order-preserving (their concatenation equals ``items``) and
    deterministic; used where per-item costs are roughly uniform or
    unknown upfront — e.g. the zigzag estimators' unit fan-out, whose
    per-unit results are merged back in unit order.  Returns only
    non-empty chunks.
    """
    items = list(items)
    if n_chunks < 1:
        raise ValueError("n_chunks must be positive")
    if not items:
        return []
    n_chunks = min(n_chunks, len(items))
    base, extra = divmod(len(items), n_chunks)
    chunks = []
    start = 0
    for index in range(n_chunks):
        stop = start + base + (1 if index < extra else 0)
        chunks.append(items[start:stop])
        start = stop
    return chunks


# ----------------------------------------------------------------------
# Worker-side graph residency
# ----------------------------------------------------------------------

#: The pool-shared graph, installed once per worker by the initializer
#: (or by :func:`run_chunked` itself on the in-process path).
_WORKER_GRAPH: "BipartiteGraph | None" = None
#: Keeps the shared-memory segment mapped for the worker's lifetime.
_WORKER_SHM = None
#: Pool-lifetime memo for state derived from the graph (built engines…).
_WORKER_CACHE: dict = {}
#: Seconds this worker spent attaching/rebuilding the graph (plus any
#: engine warm-up registered with :func:`add_worker_warmup`).
_WORKER_WARMUP = 0.0


def worker_graph() -> BipartiteGraph:
    """The graph shipped to this worker's pool (raises if none)."""
    if _WORKER_GRAPH is None:
        raise RuntimeError(
            "no shared graph installed; run_chunked(..., graph=...) ships one"
        )
    return _WORKER_GRAPH


def worker_cache() -> dict:
    """A per-worker, per-pool dict for memoising graph-derived state."""
    return _WORKER_CACHE


def worker_warmup_seconds() -> float:
    """Time this worker spent building its shared state (attach + warm-up)."""
    return _WORKER_WARMUP


def add_worker_warmup(seconds: float) -> None:
    """Fold engine-construction time into this worker's warm-up total."""
    global _WORKER_WARMUP
    _WORKER_WARMUP += seconds


def _install_graph(graph: "BipartiteGraph | None", shm=None) -> None:
    global _WORKER_GRAPH, _WORKER_SHM, _WORKER_CACHE, _WORKER_WARMUP
    _WORKER_GRAPH = graph
    _WORKER_SHM = shm
    _WORKER_CACHE = {}
    _WORKER_WARMUP = 0.0


def _attach_shm(name: str):
    """Attach to the parent's shared-memory segment without tracking it.

    Before 3.13 (``track=False``), merely *attaching* registers the
    segment with the resource tracker; with forked workers the tracker
    process is shared with the parent, so per-child registrations would
    race each other (and steal the parent's own registration) at
    unregister time.  The parent owns the segment and unlinks it, so
    child-side registration is suppressed entirely.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pre-3.13
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def _register_skipping_shm(path, rtype):
        if rtype != "shared_memory":
            original_register(path, rtype)

    resource_tracker.register = _register_skipping_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _init_worker(spec) -> None:
    """Pool initializer: attach the shipped graph exactly once per worker."""
    start = time.perf_counter()
    mode = spec[0]
    if mode == "shm":
        _, name, n_left, n_right, num_edges = spec
        shm = _attach_shm(name)
        rows = memoryview(shm.buf).cast("q")
        bounds = (n_left + 1, num_edges, n_right + 1, num_edges)
        buffers = []
        offset = 0
        for length in bounds:
            buffers.append(rows[offset : offset + length])
            offset += length
        graph = BipartiteGraph.from_csr(n_left, n_right, *buffers)
        _install_graph(graph, shm)
    else:  # "pickle": the graph itself rode in the initargs
        _install_graph(spec[1])
    add_worker_warmup(time.perf_counter() - start)


class _GraphShipment:
    """Parent-side handle for one pool's shipped graph."""

    def __init__(self, graph: BipartiteGraph, obs: "MetricsRegistry | None"):
        self.shm = None
        mode = os.environ.get(_SHIP_MODE_ENV, "auto")
        self.spec = None
        if mode != "pickle":
            self.spec = self._try_shm(graph)
        if self.spec is None:
            self.spec = ("pickle", graph)
        if obs is not None and obs.enabled:
            obs.incr("parallel.graph_ships")
            obs.incr("parallel.graph_ship_bytes", graph.nbytes)
            obs.incr(f"parallel.graph_ships_{self.spec[0]}")

    def _try_shm(self, graph: BipartiteGraph):
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=max(8, graph.nbytes)
            )
        except Exception:  # pragma: no cover - no /dev/shm
            return None
        offset = 0
        for buffer in graph.csr_buffers():
            blob = bytes(buffer)
            shm.buf[offset : offset + len(blob)] = blob
            offset += len(blob)
        self.shm = shm
        return ("shm", shm.name, graph.n_left, graph.n_right, graph.num_edges)

    def close(self) -> None:
        if self.shm is not None:
            self.shm.close()
            self.shm.unlink()
            self.shm = None


class GraphPool:
    """A process pool whose workers share one shipped graph across calls.

    :func:`run_chunked` opens and closes one of these per invocation;
    phased engines hold one open across *several* ``map()`` calls — the
    zigzag estimators run a totals pass and a sampling pass against the
    same pool, so the graph ships once for both and the per-worker
    :func:`worker_cache` (holding built ``LocalSubgraph`` + ``ZigzagDP``
    state) survives between the phases.

    The pool is a context manager; :meth:`close` (or ``__exit__``)
    shuts the executor down and releases the shared-memory segment.
    """

    def __init__(
        self,
        graph: BipartiteGraph,
        max_workers: int,
        obs: "MetricsRegistry | None" = None,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self._shipment = _GraphShipment(graph, obs)
        self._pool = ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(self._shipment.spec,),
        )

    def map(self, worker: Callable[[T], R], payloads: Sequence[T]) -> list[R]:
        """Map ``worker`` over ``payloads`` on the pool's processes."""
        if self._pool is None:
            raise RuntimeError("GraphPool is closed")
        return list(self._pool.map(worker, payloads))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._shipment is not None:
            self._shipment.close()
            self._shipment = None

    def reship(
        self, graph: BipartiteGraph, obs: "MetricsRegistry | None" = None
    ) -> "GraphPool":
        """Retire this pool and open a fresh one shipping ``graph``.

        The compaction path of the mutation subsystem: a compacted CSR
        base invalidates the buffers resident in the worker processes,
        so the old pool (and its shared-memory segment) is closed and
        the new graph pays exactly one fresh ship.  Returns the new
        pool; ``self`` is unusable afterwards.
        """
        if obs is not None and obs.enabled:
            obs.incr("parallel.graph_reships")
        max_workers = self.max_workers
        self.close()
        return GraphPool(graph, max_workers, obs)

    def __enter__(self) -> "GraphPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def run_chunked(
    worker: Callable[[T], R],
    payloads: Sequence[T],
    workers: int,
    graph: "BipartiteGraph | None" = None,
    obs: "MetricsRegistry | None" = None,
    pool: "GraphPool | None" = None,
) -> list[R]:
    """Map ``worker`` over ``payloads``, in processes when it pays off.

    With one worker or one payload the map runs in-process (identical to
    the serial path, no pickling).  ``worker`` must be a module-level
    function and the payloads picklable.

    ``graph`` is the state shared by every payload.  It is **not** part
    of the payloads: on the process path it ships once per pool (shared
    memory, or pickle-by-buffer per worker) and workers retrieve it with
    :func:`worker_graph`; on the in-process path it is installed directly
    with zero copies.  ``obs`` receives the ship counters.

    ``pool`` is a long-lived :class:`GraphPool` whose shipped graph is
    ``graph``: the map runs on it and the pool stays open afterwards, so
    a resident graph serving many requests (the service executor) pays
    for its ship exactly once per registration.  The caller owns the
    pool's lifetime; ``graph`` is only used for the single-payload
    in-process shortcut, which must traverse the same graph.
    """
    payloads = list(payloads)
    if pool is not None and len(payloads) > 1:
        if obs is not None and obs.enabled:
            obs.incr("parallel.pool_reuses")
        return pool.map(worker, payloads)
    if workers <= 1 or len(payloads) <= 1:
        if graph is None:
            return [worker(payload) for payload in payloads]
        previous = (_WORKER_GRAPH, _WORKER_SHM, _WORKER_CACHE, _WORKER_WARMUP)
        _install_graph(graph)
        try:
            return [worker(payload) for payload in payloads]
        finally:
            globals().update(
                _WORKER_GRAPH=previous[0],
                _WORKER_SHM=previous[1],
                _WORKER_CACHE=previous[2],
                _WORKER_WARMUP=previous[3],
            )
    max_workers = min(workers, len(payloads))
    if graph is None:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(worker, payloads))
    with GraphPool(graph, max_workers, obs) as pool:
        return pool.map(worker, payloads)


# ----------------------------------------------------------------------
# Result merging
# ----------------------------------------------------------------------


def split_worker_results(
    parts: "Sequence[tuple[R, dict | None]]",
    obs: "MetricsRegistry | None" = None,
    sampling_stats=None,
) -> list[R]:
    """Unzip ``(result, stats)`` worker returns; record stats into ``obs``.

    Chunk workers return their payload's result plus an optional stat
    dict (wall time, roots handled, counters).  The stats ride back with
    the results and merge here into a single registry: each worker dict
    is kept verbatim for skew inspection (``registry.workers``) and its
    counters fold into the global totals, so the merged counters of an
    ``N``-worker run equal a serial run's (the chunks partition the
    search tree).  With ``obs`` absent or disabled the stats are dropped.

    ``sampling_stats`` (a :class:`repro.core.zigzag.SamplingStats`)
    receives the ``"sampling"`` partial each estimator chunk worker ships
    in its stat dict, folded in via :meth:`SamplingStats.merge`; the
    partial is popped before the dict is recorded so reports stay
    JSON-serialisable.
    """
    results: list[R] = []
    track = obs is not None and obs.enabled
    for index, (result, stats) in enumerate(parts):
        results.append(result)
        if stats is not None:
            stats = dict(stats)
            partial = stats.pop("sampling", None)
            if sampling_stats is not None and partial is not None:
                sampling_stats.merge(partial)
            if track:
                stats.setdefault("worker", index)
                obs.record_worker(stats)
    return results


def merge_counts(parts: Iterable[BicliqueCounts]) -> BicliqueCounts:
    """Cell-wise sum of partial count matrices (exact for exact inputs).

    Uses :meth:`BicliqueCounts.merged_with`, so integer cells stay Python
    integers — parallel counting loses no exactness.
    """
    iterator = iter(parts)
    try:
        merged = next(iterator)
    except StopIteration:
        raise ValueError("merge_counts needs at least one partial result")
    for part in iterator:
        merged = merged.merged_with(part)
    return merged


def merge_local_counts(
    parts: Iterable[dict[tuple[int, int], tuple[list[int], list[int]]]],
) -> dict[tuple[int, int], tuple[list[int], list[int]]]:
    """Element-wise sum of per-vertex local count partials.

    Every part must map the same (p, q) pairs to ``(left, right)`` count
    vectors of identical lengths (one entry per vertex of the shared
    graph).
    """
    parts = list(parts)
    if not parts:
        raise ValueError("merge_local_counts needs at least one partial result")
    merged = {
        pair: ([0] * len(left), [0] * len(right))
        for pair, (left, right) in parts[0].items()
    }
    for part in parts:
        if part.keys() != merged.keys():
            raise ValueError("partial local counts disagree on the (p, q) pairs")
        for pair, (left, right) in part.items():
            merged_left, merged_right = merged[pair]
            for index, value in enumerate(left):
                merged_left[index] += value
            for index, value in enumerate(right):
                merged_right[index] += value
    return merged
