"""Tiny wall-clock timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "timed"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch; ``with sw: ...`` adds to ``sw.elapsed``."""

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed += time.perf_counter() - self._start


@contextmanager
def timed(label: str, sink: "dict[str, float] | None" = None):
    """Time a block; optionally accumulate into ``sink[label]``.

    A repeated label *adds* to the recorded time rather than overwriting
    it, so timing the same phase across loop iterations reports the
    total — the same semantics as
    :meth:`repro.obs.registry.MetricsRegistry.phase`.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        seconds = time.perf_counter() - start
        if sink is not None:
            sink[label] = sink.get(label, 0.0) + seconds
