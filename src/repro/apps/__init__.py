"""Applications of biclique counting: clustering coefficients, densest subgraph."""

from repro.apps.clustering import hcc, hcc_profile, wedge_count
from repro.apps.core_numbers import BicliqueCoreDecomposition, biclique_core_numbers
from repro.apps.densest import (
    DensestResult,
    biclique_density,
    exact_densest,
    peeling_densest,
)

__all__ = [
    "BicliqueCoreDecomposition",
    "biclique_core_numbers",
    "hcc",
    "hcc_profile",
    "wedge_count",
    "DensestResult",
    "biclique_density",
    "exact_densest",
    "peeling_densest",
]
