"""Higher-order bipartite clustering coefficients (Section 6, Fig. 14).

The (p, q) higher-order clustering coefficient generalises the butterfly
clustering coefficient: it measures the probability that a (p, q)-wedge —
a (p, q-1)-biclique core plus one extra right vertex attached to a core
left vertex, or the mirrored left-extra form — closes into a full
(p, q)-biclique:

    hcc_{p,q} = 2 * p * q * C_{p,q} / W_{p,q}

following the paper's formula, where the wedge count is

    W_{p,q} = sum_u C_u(p, q-1) * (d(u) - q + 1)
            + sum_v C_v(p-1, q) * (d(v) - p + 1)

with ``C_u`` / ``C_v`` the per-vertex local biclique counts of Section 6
(each wedge is counted once per (core, attachment-vertex, extra-vertex)
triple, matching the paper's per-vertex derivation).

All quantities come from EPivoter local counts, so a whole profile
(every ``p = q < h_max``) costs a single enumeration-tree traversal.
"""

from __future__ import annotations

from repro.core.epivoter import EPivoter
from repro.graph.bigraph import BipartiteGraph

__all__ = ["wedge_count", "hcc", "hcc_profile"]


def _wedge_from_locals(
    graph: BipartiteGraph,
    p: int,
    q: int,
    local_pq1: tuple[list[int], list[int]],
    local_p1q: tuple[list[int], list[int]],
) -> int:
    """W_{p,q} from precomputed local counts of (p, q-1) and (p-1, q)."""
    total = 0
    if q >= 2:
        left_counts = local_pq1[0]
        for u in range(graph.n_left):
            extra = graph.degree_left(u) - (q - 1)
            if extra > 0 and left_counts[u]:
                total += left_counts[u] * extra
    if p >= 2:
        right_counts = local_p1q[1]
        for v in range(graph.n_right):
            extra = graph.degree_right(v) - (p - 1)
            if extra > 0 and right_counts[v]:
                total += right_counts[v] * extra
    return total


def wedge_count(
    graph: BipartiteGraph, p: int, q: int, workers: "int | None" = None
) -> int:
    """Exact (p, q)-wedge count ``W_{p,q}`` (requires ``p, q >= 2``)."""
    if p < 2 or q < 2:
        raise ValueError("wedges are defined for p, q >= 2")
    engine = EPivoter(graph)
    locals_ = engine.count_local_many([(p, q - 1), (p - 1, q)], workers=workers)
    return _wedge_from_locals(
        engine.graph, p, q, locals_[(p, q - 1)], locals_[(p - 1, q)]
    )


def hcc(
    graph: BipartiteGraph, p: int, q: int, workers: "int | None" = None
) -> float:
    """The higher-order clustering coefficient ``hcc_{p,q}``.

    Returns 0 when the graph has no (p, q)-wedges.
    """
    if p < 2 or q < 2:
        raise ValueError("hcc is defined for p, q >= 2")
    engine = EPivoter(graph)
    locals_ = engine.count_local_many(
        [(p, q), (p, q - 1), (p - 1, q)], workers=workers
    )
    left_pq = locals_[(p, q)][0]
    bicliques = sum(left_pq) // p
    wedges = _wedge_from_locals(
        engine.graph, p, q, locals_[(p, q - 1)], locals_[(p - 1, q)]
    )
    if wedges == 0:
        return 0.0
    return 2.0 * p * q * bicliques / wedges


def hcc_profile(
    graph: BipartiteGraph, h_max: int = 9, workers: "int | None" = None
) -> dict[int, float]:
    """``hcc_{k,k}`` for every ``2 <= k <= h_max`` in one EPivoter pass.

    This is the quantity plotted per dataset in Fig. 14 (the paper plots
    ``p = q < 10``).
    """
    if h_max < 2:
        raise ValueError("h_max must be at least 2")
    pairs: set[tuple[int, int]] = set()
    for k in range(2, h_max + 1):
        pairs.update({(k, k), (k, k - 1), (k - 1, k)})
    engine = EPivoter(graph)
    locals_ = engine.count_local_many(sorted(pairs), workers=workers)
    profile: dict[int, float] = {}
    for k in range(2, h_max + 1):
        bicliques = sum(locals_[(k, k)][0]) // k
        wedges = _wedge_from_locals(
            engine.graph, k, k, locals_[(k, k - 1)], locals_[(k - 1, k)]
        )
        profile[k] = 2.0 * k * k * bicliques / wedges if wedges else 0.0
    return profile
