"""Biclique-core decomposition: per-vertex peeling levels.

A natural companion to the densest-subgraph peeling of Section 6 (the
(p, q)-biclique analogue of k-clique core numbers): the *biclique core
number* of a vertex is the largest ``k`` such that some subgraph
containing the vertex has every member participating in at least ``k``
(p, q)-bicliques of that subgraph.

Computed with the textbook min-peeling schedule: repeatedly remove the
vertices with the minimum local count; a removed vertex's core number is
the running maximum of the minimum counts seen so far.  EPivoter supplies
exact local counts after each round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.epivoter import EPivoter
from repro.graph.bigraph import BipartiteGraph

__all__ = ["BicliqueCoreDecomposition", "biclique_core_numbers"]


@dataclass(frozen=True)
class BicliqueCoreDecomposition:
    """Core numbers per vertex plus the innermost non-trivial core."""

    left_core: tuple[int, ...]
    right_core: tuple[int, ...]
    max_core: int
    innermost_left: tuple[int, ...]
    innermost_right: tuple[int, ...]

    def left_vertices_with_core_at_least(self, k: int) -> list[int]:
        return [u for u, c in enumerate(self.left_core) if c >= k]

    def right_vertices_with_core_at_least(self, k: int) -> list[int]:
        return [v for v, c in enumerate(self.right_core) if c >= k]


def biclique_core_numbers(
    graph: BipartiteGraph, p: int, q: int
) -> BicliqueCoreDecomposition:
    """Compute the (p, q)-biclique core number of every vertex.

    Each peeling round costs one EPivoter pass, so this targets the
    paper-style analysis of small and medium graphs.  Counts are exact.
    """
    if p < 1 or q < 1:
        raise ValueError("p and q must be positive")
    left_core = [0] * graph.n_left
    right_core = [0] * graph.n_right
    alive_left = list(range(graph.n_left))
    alive_right = list(range(graph.n_right))
    current = graph
    running_max = 0
    innermost: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())
    while alive_left and alive_right and current.num_edges:
        engine = EPivoter(current)
        ordered, left_map, right_map = current.degree_ordered()
        left_ordered, right_ordered = engine.count_local(p, q)
        left_local = [left_ordered[left_map[i]] for i in range(current.n_left)]
        right_local = [right_ordered[right_map[i]] for i in range(current.n_right)]
        minimum = min(min(left_local), min(right_local))
        running_max = max(running_max, minimum)
        if minimum > 0:
            innermost = (tuple(alive_left), tuple(alive_right))
        # Peel every vertex sitting at the minimum; they leave with the
        # current running maximum as their core number.
        keep_left, keep_right = [], []
        for i, count in enumerate(left_local):
            if count == minimum:
                left_core[alive_left[i]] = running_max
            else:
                keep_left.append(i)
        for i, count in enumerate(right_local):
            if count == minimum:
                right_core[alive_right[i]] = running_max
            else:
                keep_right.append(i)
        if len(keep_left) == current.n_left and len(keep_right) == current.n_right:
            break  # defensive: nothing peeled (cannot happen: min always hits)
        sub, sub_left, sub_right = current.induced_subgraph(keep_left, keep_right)
        alive_left = [alive_left[i] for i in sub_left]
        alive_right = [alive_right[i] for i in sub_right]
        current = sub
    # Vertices still alive when the loop ends (edgeless remainder) carry
    # the running maximum too.
    for u in alive_left:
        left_core[u] = max(left_core[u], running_max) if current.num_edges else left_core[u]
    for v in alive_right:
        right_core[v] = max(right_core[v], running_max) if current.num_edges else right_core[v]
    max_core = max(max(left_core, default=0), max(right_core, default=0))
    return BicliqueCoreDecomposition(
        tuple(left_core), tuple(right_core), max_core, innermost[0], innermost[1]
    )
