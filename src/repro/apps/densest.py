"""(p, q)-biclique densest subgraph (Section 6, Table 6).

The (p, q)-biclique density of a subgraph ``S`` is
``gamma(S) = c(S) / |S|``: the number of (p, q)-bicliques fully inside
``S`` divided by its number of vertices.  Two solvers:

* :func:`peeling_densest` — the paper's ``1/(p+q)``-approximation: repeat-
  edly drop the vertex with the smallest local biclique count (EPivoter
  local counts), tracking the densest prefix (Theorem 6.1);
* :func:`exact_densest` — the max-flow baseline of [22]: enumerate all
  (p, q)-biclique instances, then binary-search the density ``g`` with
  Goldberg's construction (source -> instance (cap 1), instance -> its
  vertices (cap inf), vertex -> sink (cap g)) solved by our Dinic solver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.bclist import bc_enumerate
from repro.core.epivoter import EPivoter
from repro.graph.bigraph import BipartiteGraph
from repro.utils.maxflow import DinicMaxFlow

__all__ = ["DensestResult", "biclique_density", "peeling_densest", "exact_densest"]


@dataclass(frozen=True)
class DensestResult:
    """A densest-subgraph answer: vertex sets plus the achieved density."""

    left: tuple[int, ...]
    right: tuple[int, ...]
    density: float
    biclique_count: int

    @property
    def num_vertices(self) -> int:
        return len(self.left) + len(self.right)


def biclique_density(graph: BipartiteGraph, p: int, q: int) -> float:
    """``gamma(G) = c(G) / (|U| + |V|)`` for the whole graph."""
    total_vertices = graph.n_left + graph.n_right
    if total_vertices == 0:
        return 0.0
    count = EPivoter(graph).count_single(p, q)
    return count / total_vertices


def peeling_densest(
    graph: BipartiteGraph,
    p: int,
    q: int,
    recompute_every: int = 1,
) -> DensestResult:
    """Greedy peeling ``1/(p+q)``-approximation (Theorem 6.1).

    Each round computes per-vertex local counts with EPivoter, records the
    current density, removes every vertex with zero count, and then the
    vertex with the minimum count.  ``recompute_every > 1`` removes that
    many minimum vertices per recount — the standard batched variant for
    larger graphs (still a valid peeling order, slightly coarser).
    """
    if recompute_every < 1:
        raise ValueError("recompute_every must be positive")
    left_alive = list(range(graph.n_left))
    right_alive = list(range(graph.n_right))
    best: "DensestResult | None" = None
    current = graph
    while left_alive and right_alive:
        engine = EPivoter(current)
        ordered, left_map, right_map = current.degree_ordered()
        left_local, right_local = engine.count_local(p, q)
        # Map ordered-label counts back to the current subgraph's labels.
        count_of: list[tuple[int, int, int]] = []  # (count, side, index)
        for idx, new in enumerate(left_map):
            count_of.append((left_local[new], 0, idx))
        for idx, new in enumerate(right_map):
            count_of.append((right_local[new], 1, idx))
        total = sum(c for c, side, _ in count_of if side == 0) // p
        if total == 0:
            break
        # Score the subgraph restricted to vertices that participate in at
        # least one biclique: dropping zero-count vertices keeps the count
        # and shrinks the denominator, so this dominates scoring S itself.
        positive_left = [i for c, side, i in count_of if side == 0 and c > 0]
        positive_right = [i for c, side, i in count_of if side == 1 and c > 0]
        density = total / (len(positive_left) + len(positive_right))
        if best is None or density > best.density:
            best = DensestResult(
                tuple(left_alive[i] for i in positive_left),
                tuple(right_alive[i] for i in positive_right),
                density,
                total,
            )
        # Drop all zero-count vertices (they never affect any biclique),
        # then the `recompute_every` smallest positive ones.
        zeros_left = {i for c, side, i in count_of if side == 0 and c == 0}
        zeros_right = {i for c, side, i in count_of if side == 1 and c == 0}
        positive = sorted((c, side, i) for c, side, i in count_of if c > 0)
        for c, side, i in positive[:recompute_every]:
            if side == 0:
                zeros_left.add(i)
            else:
                zeros_right.add(i)
        keep_left = [i for i in range(current.n_left) if i not in zeros_left]
        keep_right = [i for i in range(current.n_right) if i not in zeros_right]
        sub, sub_left, sub_right = current.induced_subgraph(keep_left, keep_right)
        left_alive = [left_alive[i] for i in sub_left]
        right_alive = [right_alive[i] for i in sub_right]
        current = sub
    if best is None:
        return DensestResult((), (), 0.0, 0)
    return best


def exact_densest(
    graph: BipartiteGraph,
    p: int,
    q: int,
    budget: "int | None" = 500_000,
) -> DensestResult:
    """Exact densest subgraph via instance enumeration + parametric max-flow.

    Enumerates every (p, q)-biclique (cost bounded by ``budget``
    instances; see :class:`~repro.baselines.bclist.EnumerationBudgetExceeded`),
    then binary-searches the density.  Matches the paper's observation
    that the exact algorithm is intractable once instances explode.
    """
    instances = list(bc_enumerate(graph, p, q, budget=budget))
    if not instances:
        return DensestResult((), (), 0.0, 0)
    num_instances = len(instances)
    num_vertices = graph.n_left + graph.n_right

    def vertex_node(side: int, index: int) -> int:
        return 2 + num_instances + (index if side == 0 else graph.n_left + index)

    def feasible(g: float) -> "set[int] | None":
        """Return the dense side of the cut if some S has density > g."""
        flow = DinicMaxFlow(2 + num_instances + num_vertices)
        source, sink = 0, 1
        for i, (left, right) in enumerate(instances):
            flow.add_edge(source, 2 + i, 1.0)
            for u in left:
                flow.add_edge(2 + i, vertex_node(0, u), float("inf"))
            for v in right:
                flow.add_edge(2 + i, vertex_node(1, v), float("inf"))
        for u in range(graph.n_left):
            flow.add_edge(vertex_node(0, u), sink, g)
        for v in range(graph.n_right):
            flow.add_edge(vertex_node(1, v), sink, g)
        value = flow.max_flow(source, sink)
        if value >= num_instances - 1e-9:
            return None
        return flow.min_cut_side(source)

    lo, hi = 0.0, float(num_instances)
    best_side: "set[int] | None" = feasible(0.0)
    if best_side is None:
        return DensestResult((), (), 0.0, 0)
    # Distinct densities are ratios c/k with k <= |V(G)|, so a gap below
    # 1/(n*(n-1)) pins the optimum exactly.
    precision = 1.0 / (num_vertices * max(1, num_vertices - 1))
    while hi - lo > precision:
        mid = (lo + hi) / 2.0
        side = feasible(mid)
        if side is None:
            hi = mid
        else:
            lo = mid
            best_side = side
    left = tuple(
        sorted(u for u in range(graph.n_left) if vertex_node(0, u) in best_side)
    )
    right = tuple(
        sorted(v for v in range(graph.n_right) if vertex_node(1, v) in best_side)
    )
    if not left or not right:
        return DensestResult((), (), 0.0, 0)
    sub, _, _ = graph.induced_subgraph(left, right)
    count = EPivoter(sub).count_single(p, q) if sub.num_edges else 0
    density = count / (len(left) + len(right))
    return DensestResult(left, right, density, count)
