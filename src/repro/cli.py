"""Command-line interface: ``repro-biclique``.

Subcommands mirror the library's main entry points:

* ``count``     — exact counting (EPivoter), all pairs or a single pair;
* ``estimate``  — sampling estimates (ZigZag / ZigZag++ / hybrid);
* ``maximal``   — maximal biclique enumeration (EPMBCE);
* ``hcc``       — higher-order clustering coefficient profile;
* ``densest``   — (p, q)-biclique densest subgraph (peeling or exact);
* ``datasets``  — list the bundled synthetic stand-in datasets.

Graphs come either from ``--dataset NAME`` (synthetic stand-ins) or
``--input FILE`` (edge-list format, see :mod:`repro.graph.io`).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.apps.clustering import hcc_profile
from repro.apps.densest import exact_densest, peeling_densest
from repro.core.epivoter import EPivoter
from repro.core.hybrid import hybrid_count_all
from repro.core.mbce import enumerate_maximal_bicliques
from repro.core.zigzag import zigzag_count_all, zigzagpp_count_all
from repro.graph.bigraph import BipartiteGraph
from repro.graph.datasets import available_datasets, dataset_spec, load_dataset
from repro.graph.io import read_edge_list

__all__ = ["main", "build_parser"]


def _load_graph(args: argparse.Namespace) -> BipartiteGraph:
    if args.dataset and args.input:
        raise SystemExit("use either --dataset or --input, not both")
    if args.dataset:
        return load_dataset(args.dataset)
    if args.input:
        graph, _, _ = read_edge_list(args.input)
        return graph
    raise SystemExit("a graph is required: pass --dataset NAME or --input FILE")


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", help="bundled synthetic dataset name")
    parser.add_argument("--input", help="edge-list file (u v per line)")


def _print_counts(counts, limit_p: int, limit_q: int, stream) -> None:
    header = "p\\q " + " ".join(f"{q:>14d}" for q in range(1, limit_q + 1))
    print(header, file=stream)
    for p in range(1, limit_p + 1):
        cells = []
        for q in range(1, limit_q + 1):
            value = counts[p, q]
            if isinstance(value, float):
                cells.append(f"{value:>14.4g}")
            else:
                cells.append(f"{value:>14d}")
        print(f"{p:>3d} " + " ".join(cells), file=stream)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-biclique",
        description="(p, q)-biclique counting (SIGMOD 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    count = sub.add_parser("count", help="exact counting with EPivoter")
    _add_graph_arguments(count)
    count.add_argument("-p", type=int, default=None, help="count only (p, q)")
    count.add_argument("-q", type=int, default=None)
    count.add_argument("--max-p", type=int, default=10)
    count.add_argument("--max-q", type=int, default=10)
    count.add_argument("--pivot", choices=["product", "exact"], default="product")
    count.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for exact counting (0 = one per CPU)",
    )

    estimate = sub.add_parser("estimate", help="sampling estimates")
    _add_graph_arguments(estimate)
    estimate.add_argument(
        "--algorithm",
        choices=["zigzag", "zigzag++", "hybrid", "hybrid++"],
        default="zigzag++",
    )
    estimate.add_argument("--h-max", type=int, default=10)
    estimate.add_argument("--samples", type=int, default=100_000)
    estimate.add_argument("--seed", type=int, default=None)
    estimate.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the hybrid exact pass (0 = one per CPU)",
    )

    maximal = sub.add_parser("maximal", help="enumerate maximal bicliques")
    _add_graph_arguments(maximal)
    maximal.add_argument("--limit", type=int, default=50, help="print at most N")

    hcc_cmd = sub.add_parser("hcc", help="clustering coefficient profile")
    _add_graph_arguments(hcc_cmd)
    hcc_cmd.add_argument("--h-max", type=int, default=6)
    hcc_cmd.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for local counting (0 = one per CPU)",
    )

    densest = sub.add_parser("densest", help="densest subgraph")
    _add_graph_arguments(densest)
    densest.add_argument("-p", type=int, required=True)
    densest.add_argument("-q", type=int, required=True)
    densest.add_argument("--method", choices=["peeling", "exact"], default="peeling")

    stats = sub.add_parser("stats", help="summary statistics of a graph")
    _add_graph_arguments(stats)

    partition = sub.add_parser("partition", help="sparse/dense split (Alg. 9)")
    _add_graph_arguments(partition)
    partition.add_argument("--tau", type=float, default=None)
    partition.add_argument("--quantile", type=float, default=0.9)

    adaptive = sub.add_parser(
        "adaptive", help="estimate one (p, q) to a target accuracy"
    )
    _add_graph_arguments(adaptive)
    adaptive.add_argument("-p", type=int, required=True)
    adaptive.add_argument("-q", type=int, required=True)
    adaptive.add_argument("--delta", type=float, default=0.05)
    adaptive.add_argument("--epsilon", type=float, default=0.05)
    adaptive.add_argument("--max-samples", type=int, default=100_000)
    adaptive.add_argument("--seed", type=int, default=None)

    sub.add_parser("datasets", help="list bundled synthetic datasets")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout

    if args.command == "datasets":
        print(f"{'name':<20} {'|U|':>8} {'|V|':>8} {'|E|':>8}  paper scale", file=out)
        for name in available_datasets():
            spec = dataset_spec(name)
            print(
                f"{name:<20} {spec.n_left:>8} {spec.n_right:>8} {spec.num_edges:>8}"
                f"  {spec.paper_n_left}x{spec.paper_n_right} ({spec.paper_num_edges} edges)",
                file=out,
            )
        return 0

    graph = _load_graph(args)
    print(f"graph: {graph}", file=out)
    start = time.perf_counter()

    if args.command == "count":
        engine = EPivoter(graph, pivot=args.pivot)
        if (args.p is None) != (args.q is None):
            raise SystemExit("-p and -q must be given together")
        if args.p is not None:
            value = engine.count_single(args.p, args.q, workers=args.workers)
            print(f"C({args.p},{args.q}) = {value}", file=out)
        else:
            counts = engine.count_all(args.max_p, args.max_q, workers=args.workers)
            _print_counts(counts, args.max_p, args.max_q, out)
    elif args.command == "estimate":
        if args.algorithm == "zigzag":
            counts = zigzag_count_all(graph, args.h_max, args.samples, args.seed)
        elif args.algorithm == "zigzag++":
            counts = zigzagpp_count_all(graph, args.h_max, args.samples, args.seed)
        else:
            estimator = "zigzag" if args.algorithm == "hybrid" else "zigzag++"
            counts = hybrid_count_all(
                graph, args.h_max, args.samples, args.seed,
                estimator=estimator, workers=args.workers,
            )
        _print_counts(counts, args.h_max, args.h_max, out)
    elif args.command == "maximal":
        bicliques = enumerate_maximal_bicliques(graph)
        print(f"{len(bicliques)} maximal bicliques", file=out)
        for left, right in bicliques[: args.limit]:
            print(f"  {list(left)} x {list(right)}", file=out)
        if len(bicliques) > args.limit:
            print(f"  ... ({len(bicliques) - args.limit} more)", file=out)
    elif args.command == "hcc":
        profile = hcc_profile(graph, args.h_max, workers=args.workers)
        for k, value in sorted(profile.items()):
            print(f"hcc({k},{k}) = {value:.6f}", file=out)
    elif args.command == "densest":
        if args.method == "peeling":
            result = peeling_densest(graph, args.p, args.q)
        else:
            result = exact_densest(graph, args.p, args.q)
        print(
            f"density = {result.density:.4f} over {result.num_vertices} vertices"
            f" ({result.biclique_count} bicliques)",
            file=out,
        )
    elif args.command == "stats":
        from repro.graph.statistics import summarize

        summary = summarize(graph)
        for field_name in (
            "n_left", "n_right", "num_edges", "mean_degree_left",
            "mean_degree_right", "max_degree_left", "max_degree_right",
            "density", "num_components", "degeneracy",
        ):
            value = getattr(summary, field_name)
            rendered = f"{value:.6f}" if isinstance(value, float) else str(value)
            print(f"{field_name:<18} {rendered}", file=out)
    elif args.command == "partition":
        from repro.core.hybrid import partition_graph

        ordered = graph.degree_ordered()[0]
        sparse, dense, weights = partition_graph(
            ordered, tau=args.tau, quantile=args.quantile
        )
        print(
            f"sparse region: {len(sparse)} vertices; "
            f"dense region: {len(dense)} vertices; "
            f"max weight {max(weights, default=0)}",
            file=out,
        )
    elif args.command == "adaptive":
        from repro.core.adaptive import adaptive_count

        result = adaptive_count(
            graph, args.p, args.q,
            delta=args.delta, epsilon=args.epsilon,
            max_samples=args.max_samples, seed=args.seed,
        )
        lo, hi = result.interval
        status = "met" if result.satisfied else "sample cap reached"
        print(
            f"C({args.p},{args.q}) ~= {result.estimate:.1f} "
            f"[{lo:.1f}, {hi:.1f}] after {result.samples_used} samples ({status})",
            file=out,
        )

    print(f"elapsed: {time.perf_counter() - start:.3f}s", file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
