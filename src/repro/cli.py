"""Command-line interface: ``repro-biclique``.

Subcommands mirror the library's main entry points:

* ``count``     — exact counting, all pairs or a single pair: EPivoter by
  default, or ``--method matrix`` for the closed-form sparse-matrix
  engine on small shapes (p, q <= 3);
* ``estimate``  — sampling estimates (ZigZag / ZigZag++ / hybrid);
* ``maximal``   — maximal biclique enumeration (EPMBCE);
* ``hcc``       — higher-order clustering coefficient profile;
* ``densest``   — (p, q)-biclique densest subgraph (peeling or exact);
* ``datasets``  — list the bundled synthetic stand-in datasets;
* ``serve``     — the HTTP counting service (see ``docs/service.md``);
  with ``--shard`` it also serves the internal partial-count endpoint
  a cluster coordinator scatters to;
* ``coordinate`` — the cluster coordinator: the same public HTTP API,
  with exact counts scattered as weighted root-edge ranges across
  ``--shards host:port,...`` and merged as exact integers.

Graphs come either from ``--dataset NAME`` (synthetic stand-ins) or
``--input FILE`` (edge-list format, see :mod:`repro.graph.io`).

Every graph-consuming subcommand accepts the observability flags:

* ``--stats`` prints the collected engine counters, phase timers, and
  per-worker skew after the normal output;
* ``--report FILE`` writes the full JSON run report (schema
  ``repro-run-report/1``, see ``docs/observability.md``);
* ``--json`` (``count`` / ``estimate`` only) replaces the human output
  with one machine-readable JSON document: counts matrix + run report.

Without any of these flags the engines receive the no-op registry and
run the exact uninstrumented code path.
"""

from __future__ import annotations

import argparse
import io
import sys

from repro.apps.clustering import hcc_profile
from repro.apps.densest import exact_densest, peeling_densest
from repro.core.epivoter import EPivoter
from repro.core.hybrid import hybrid_count_all
from repro.core.mbce import enumerate_maximal_bicliques
from repro.core.zigzag import zigzag_count_all, zigzagpp_count_all
from repro.graph.bigraph import BipartiteGraph
from repro.graph.datasets import available_datasets, dataset_spec, load_dataset
from repro.graph.io import read_edge_list
from repro.obs import (
    NULL_REGISTRY,
    Heartbeat,
    MemoryProbe,
    MetricsRegistry,
    RunReport,
    counts_to_dict,
)
from repro.utils.timer import timed

__all__ = ["main", "build_parser"]


def _load_graph(args: argparse.Namespace) -> BipartiteGraph:
    if args.dataset and args.input:
        raise SystemExit("use either --dataset or --input, not both")
    if args.dataset:
        return load_dataset(args.dataset)
    if args.input:
        graph, _, _ = read_edge_list(args.input)
        return graph
    raise SystemExit("a graph is required: pass --dataset NAME or --input FILE")


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", help="bundled synthetic dataset name")
    parser.add_argument("--input", help="edge-list file (u v per line)")


def _add_obs_arguments(
    parser: argparse.ArgumentParser, json_output: bool = False
) -> None:
    parser.add_argument(
        "--stats", action="store_true",
        help="print engine counters, phase timers, and per-worker stats",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="write a JSON run report (schema repro-run-report/1) to FILE",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="emit a rate-limited progress heartbeat to stderr",
    )
    if json_output:
        parser.add_argument(
            "--json", action="store_true",
            help="print one JSON document (counts + run report) instead of text",
        )


def _print_counts(counts, limit_p: int, limit_q: int, stream) -> None:
    header = "p\\q " + " ".join(f"{q:>14d}" for q in range(1, limit_q + 1))
    print(header, file=stream)
    for p in range(1, limit_p + 1):
        cells = []
        for q in range(1, limit_q + 1):
            value = counts[p, q]
            if isinstance(value, float):
                cells.append(f"{value:>14.4g}")
            else:
                cells.append(f"{value:>14d}")
        print(f"{p:>3d} " + " ".join(cells), file=stream)


def _print_stats(report: RunReport, stream) -> None:
    """Human-readable rendering of a run report (the ``--stats`` block)."""
    print("--- run stats ---", file=stream)
    for name, seconds in sorted(report.timers.items()):
        print(f"phase {name:<28} {seconds:10.3f}s", file=stream)
    for name, value in sorted(report.counters.items()):
        print(f"counter {name:<26} {value:>12}", file=stream)
    for name, value in sorted(report.gauges.items()):
        print(f"gauge {name:<28} {value:>12}", file=stream)
    for name, value in sorted(report.memory.items()):
        mib = value / (1024 * 1024)
        print(f"memory {name:<27} {mib:>11.2f}M", file=stream)
    if report.workers:
        sampling = any("units" in worker for worker in report.workers)
        if sampling:
            # Estimator chunk workers: unit counts + per-pass draw shares.
            print("worker  phase                units  samples  wall_time", file=stream)
            for worker in report.workers:
                print(
                    f"{worker.get('worker', '?'):>6}"
                    f"  {worker.get('phase', '?'):<19}"
                    f"  {worker.get('units', 0):>5}"
                    f"  {worker.get('samples_drawn', 0):>7}"
                    f"  {worker.get('wall_time', 0.0):>8.3f}s",
                    file=stream,
                )
        else:
            print("worker  roots  nodes_expanded  prune_hits  wall_time", file=stream)
            for worker in report.workers:
                print(
                    f"{worker.get('worker', '?'):>6}"
                    f"  {worker.get('roots', 0):>5}"
                    f"  {worker.get('nodes_expanded', 0):>14}"
                    f"  {worker.get('prune_hits', 0):>10}"
                    f"  {worker.get('wall_time', 0.0):>8.3f}s",
                    file=stream,
                )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-biclique",
        description="(p, q)-biclique counting (SIGMOD 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    count = sub.add_parser("count", help="exact counting (EPivoter or matrix)")
    _add_graph_arguments(count)
    count.add_argument("-p", type=int, default=None, help="count only (p, q)")
    count.add_argument("-q", type=int, default=None)
    count.add_argument("--max-p", type=int, default=10)
    count.add_argument("--max-q", type=int, default=10)
    count.add_argument(
        "--method", choices=["epivoter", "matrix"], default="epivoter",
        help="exact engine: the EPivoter tree walk, or the closed-form "
        "sparse-matrix engine (min(p, q) <= 2 or (3, 3) only)",
    )
    count.add_argument("--pivot", choices=["product", "exact"], default="product")
    count.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for exact counting (0 = one per CPU)",
    )
    _add_obs_arguments(count, json_output=True)

    estimate = sub.add_parser("estimate", help="sampling estimates")
    _add_graph_arguments(estimate)
    estimate.add_argument(
        "--algorithm",
        choices=["zigzag", "zigzag++", "hybrid", "hybrid++"],
        default="zigzag++",
    )
    estimate.add_argument("--h-max", type=int, default=10)
    estimate.add_argument("--samples", type=int, default=100_000)
    estimate.add_argument("--seed", type=int, default=None)
    estimate.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the sampling (and hybrid exact) pass; "
        "estimates are bit-identical for any worker count (0 = one per CPU)",
    )
    estimate.add_argument(
        "--per-sample", action="store_true",
        help="use the per-sample reference walk instead of the batch kernel",
    )
    _add_obs_arguments(estimate, json_output=True)

    maximal = sub.add_parser("maximal", help="enumerate maximal bicliques")
    _add_graph_arguments(maximal)
    maximal.add_argument("--limit", type=int, default=50, help="print at most N")
    _add_obs_arguments(maximal)

    hcc_cmd = sub.add_parser("hcc", help="clustering coefficient profile")
    _add_graph_arguments(hcc_cmd)
    hcc_cmd.add_argument("--h-max", type=int, default=6)
    hcc_cmd.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for local counting (0 = one per CPU)",
    )
    _add_obs_arguments(hcc_cmd)

    densest = sub.add_parser("densest", help="densest subgraph")
    _add_graph_arguments(densest)
    densest.add_argument("-p", type=int, required=True)
    densest.add_argument("-q", type=int, required=True)
    densest.add_argument("--method", choices=["peeling", "exact"], default="peeling")
    _add_obs_arguments(densest)

    stats = sub.add_parser("stats", help="summary statistics of a graph")
    _add_graph_arguments(stats)
    _add_obs_arguments(stats)

    partition = sub.add_parser("partition", help="sparse/dense split (Alg. 9)")
    _add_graph_arguments(partition)
    partition.add_argument("--tau", type=float, default=None)
    partition.add_argument("--quantile", type=float, default=0.9)
    _add_obs_arguments(partition)

    adaptive = sub.add_parser(
        "adaptive", help="estimate one (p, q) to a target accuracy"
    )
    _add_graph_arguments(adaptive)
    adaptive.add_argument("-p", type=int, required=True)
    adaptive.add_argument("-q", type=int, required=True)
    adaptive.add_argument("--delta", type=float, default=0.05)
    adaptive.add_argument("--epsilon", type=float, default=0.05)
    adaptive.add_argument("--max-samples", type=int, default=100_000)
    adaptive.add_argument("--seed", type=int, default=None)
    adaptive.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for each sampling round (0 = one per CPU)",
    )
    _add_obs_arguments(adaptive)

    sub.add_parser("datasets", help="list bundled synthetic datasets")

    serve = sub.add_parser(
        "serve", help="start the HTTP counting service (docs/service.md)"
    )
    _add_graph_arguments(serve)  # optional preload; /v1/graphs works too
    serve.add_argument(
        "--name", default=None,
        help="registration name for the preloaded graph "
        "(default: the dataset name or a fingerprint prefix)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8750, help="0 picks a free port"
    )
    serve.add_argument(
        "--threads", type=int, default=2,
        help="request worker threads (bounds engine concurrency)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=64,
        help="admission queue capacity; a full queue answers 429",
    )
    serve.add_argument(
        "--engine-workers", type=int, default=None,
        help="worker processes for exact counting (0 = one per CPU); "
        "with >1 each registered graph keeps a resident process pool",
    )
    serve.add_argument(
        "--cache-capacity", type=int, default=1024,
        help="result cache entries (0 disables caching)",
    )
    serve.add_argument(
        "--cache-file", default=None,
        help="JSON file to load the result cache from and save it to on exit",
    )
    serve.add_argument(
        "--trace-ring", type=int, default=256,
        help="finished request traces retained for GET /v1/traces",
    )
    serve.add_argument(
        "--slow-log", default=None,
        help="JSON-lines file receiving every traced request slower "
        "than --slow-ms",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=500.0,
        help="slow-query threshold in milliseconds (with --slow-log)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    serve.add_argument(
        "--shard", action="store_true",
        help="shard role: also serve the internal POST /v1/shard/count "
        "partial-count endpoint for a cluster coordinator",
    )
    serve.add_argument(
        "--compact-edges", type=int, default=None,
        help="compact a mutated graph's delta overlay into a fresh CSR "
        "base once it holds this many edges (default 4096)",
    )
    serve.add_argument(
        "--compact-fraction", type=float, default=None,
        help="also compact once the overlay exceeds this fraction of "
        "the base edge count (default 0.25)",
    )

    coordinate = sub.add_parser(
        "coordinate",
        help="serve the public API by scattering exact counts across "
        "--shard instances (docs/service.md)",
    )
    _add_graph_arguments(coordinate)  # optional preload, shipped to shards
    coordinate.add_argument(
        "--name", default=None,
        help="registration name for the preloaded graph "
        "(default: the dataset name or a fingerprint prefix)",
    )
    coordinate.add_argument(
        "--shards", required=True,
        help="comma-separated shard endpoints, e.g. "
        "127.0.0.1:8751,127.0.0.1:8752",
    )
    coordinate.add_argument(
        "--shard-timeout", type=float, default=30.0,
        help="per-shard request timeout in seconds",
    )
    coordinate.add_argument(
        "--shard-retries", type=int, default=1,
        help="fresh-connection retries per shard request "
        "(timeouts never retry)",
    )
    coordinate.add_argument(
        "--nodes-per-second", type=float, default=None,
        help="planner calibration override: per-shard exact-engine "
        "throughput in tree nodes/second",
    )
    coordinate.add_argument("--host", default="127.0.0.1")
    coordinate.add_argument(
        "--port", type=int, default=8750, help="0 picks a free port"
    )
    coordinate.add_argument(
        "--threads", type=int, default=2,
        help="request worker threads (bounds concurrent scatters)",
    )
    coordinate.add_argument(
        "--queue-size", type=int, default=64,
        help="admission queue capacity; a full queue answers 429",
    )
    coordinate.add_argument(
        "--cache-capacity", type=int, default=1024,
        help="result cache entries (0 disables caching)",
    )
    coordinate.add_argument(
        "--cache-file", default=None,
        help="JSON file to load the result cache from and save it to on exit",
    )
    coordinate.add_argument(
        "--trace-ring", type=int, default=256,
        help="finished request traces retained for GET /v1/traces",
    )
    coordinate.add_argument(
        "--slow-log", default=None,
        help="JSON-lines file receiving every traced request slower "
        "than --slow-ms",
    )
    coordinate.add_argument(
        "--slow-ms", type=float, default=500.0,
        help="slow-query threshold in milliseconds (with --slow-log)",
    )
    coordinate.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    coordinate.add_argument(
        "--compact-edges", type=int, default=None,
        help="compact a mutated graph's delta overlay into a fresh CSR "
        "base once it holds this many edges (default 4096)",
    )
    coordinate.add_argument(
        "--compact-fraction", type=float, default=None,
        help="also compact once the overlay exceeds this fraction of "
        "the base edge count (default 0.25)",
    )
    return parser


def _report_arguments(args: argparse.Namespace) -> dict:
    """The invocation arguments, JSON-safe, without obs plumbing noise."""
    skip = {"command", "stats", "report", "json", "progress"}
    return {
        name: value
        for name, value in vars(args).items()
        if name not in skip and value is not None
    }


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: build the service stack and block."""
    from repro.service.cache import ResultCache
    from repro.service.executor import ServiceExecutor
    from repro.service.server import create_server, serve_forever

    obs = MetricsRegistry()
    cache = ResultCache(
        capacity=args.cache_capacity, obs=obs, path=args.cache_file
    )
    slow_log = None
    if args.slow_log:
        from repro.obs.trace import SlowQueryLog

        slow_log = SlowQueryLog(args.slow_log, threshold_ms=args.slow_ms)
        print(
            f"slow-query log: {args.slow_log} (threshold {args.slow_ms:g} ms)",
            file=sys.stderr,
        )
    compact_kwargs = {}
    if args.compact_edges is not None:
        compact_kwargs["compact_edges"] = args.compact_edges
    if args.compact_fraction is not None:
        compact_kwargs["compact_fraction"] = args.compact_fraction
    executor = ServiceExecutor(
        max_queue=args.queue_size,
        threads=args.threads,
        engine_workers=args.engine_workers,
        cache=cache,
        obs=obs,
        trace_ring=args.trace_ring,
        slow_log=slow_log,
        **compact_kwargs,
    )
    if args.dataset or args.input:
        graph = _load_graph(args)
        name = args.name or args.dataset or None
        registered = executor.register(graph, name=name)
        print(
            f"registered graph {registered.name!r}"
            f" ({registered.profile.num_edges} edges,"
            f" fingerprint {registered.fingerprint[:12]})",
            file=sys.stderr,
        )
    if args.cache_file and len(cache):
        print(f"result cache: {len(cache)} entries loaded", file=sys.stderr)
    server = create_server(
        args.host, args.port, executor, obs=obs, quiet=not args.verbose,
        shard=args.shard,
    )
    host, port = server.server_address[:2]
    # The readiness line goes to stdout, flushed, so wrappers (the CI
    # smoke script) can wait for it before sending requests.
    role = " (shard)" if args.shard else ""
    print(f"serving on http://{host}:{port}{role}", flush=True)
    serve_forever(server)
    return 0


def _run_coordinate(args: argparse.Namespace) -> int:
    """The ``coordinate`` subcommand: cluster coordinator over shards."""
    from repro.service.cache import ResultCache
    from repro.service.cluster import ClusterExecutor, ShardClient
    from repro.service.server import create_server, serve_forever

    obs = MetricsRegistry()
    cache = ResultCache(
        capacity=args.cache_capacity, obs=obs, path=args.cache_file
    )
    slow_log = None
    if args.slow_log:
        from repro.obs.trace import SlowQueryLog

        slow_log = SlowQueryLog(args.slow_log, threshold_ms=args.slow_ms)
    shards = [
        ShardClient.parse(
            spec, timeout=args.shard_timeout, retries=args.shard_retries
        )
        for spec in args.shards.split(",")
        if spec.strip()
    ]
    if not shards:
        raise SystemExit("--shards needs at least one host:port")
    compact_kwargs = {}
    if args.compact_edges is not None:
        compact_kwargs["compact_edges"] = args.compact_edges
    if args.compact_fraction is not None:
        compact_kwargs["compact_fraction"] = args.compact_fraction
    executor = ClusterExecutor(
        shards,
        max_queue=args.queue_size,
        threads=args.threads,
        engine_workers=1,  # exact work runs on the shards, not here
        cache=cache,
        obs=obs,
        nodes_per_second=args.nodes_per_second,
        trace_ring=args.trace_ring,
        slow_log=slow_log,
        **compact_kwargs,
    )
    print(
        "coordinating shards: "
        + ", ".join(client.address for client in shards),
        file=sys.stderr,
    )
    if args.dataset or args.input:
        graph = _load_graph(args)
        name = args.name or args.dataset or None
        registered = executor.register(graph, name=name)
        print(
            f"registered graph {registered.name!r} on "
            f"{len(shards)} shard(s)"
            f" ({registered.profile.num_edges} edges,"
            f" fingerprint {registered.fingerprint[:12]})",
            file=sys.stderr,
        )
    server = create_server(
        args.host, args.port, executor, obs=obs, quiet=not args.verbose
    )
    host, port = server.server_address[:2]
    print(f"coordinating on http://{host}:{port}", flush=True)
    serve_forever(server)
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "coordinate":
        return _run_coordinate(args)

    if args.command == "datasets":
        out = sys.stdout
        print(f"{'name':<20} {'|U|':>8} {'|V|':>8} {'|E|':>8}  paper scale", file=out)
        for name in available_datasets():
            spec = dataset_spec(name)
            print(
                f"{name:<20} {spec.n_left:>8} {spec.n_right:>8} {spec.num_edges:>8}"
                f"  {spec.paper_n_left}x{spec.paper_n_right} ({spec.paper_num_edges} edges)",
                file=out,
            )
        return 0

    json_mode = bool(getattr(args, "json", False))
    want_obs = bool(args.stats or args.report or json_mode)
    # The engines see a real registry only when someone will read it;
    # otherwise they take the uninstrumented code path via the no-op twin.
    obs = MetricsRegistry() if want_obs else NULL_REGISTRY
    heartbeat = Heartbeat(label="search nodes") if args.progress else None
    # In --json mode the human-readable output is routed to a throwaway
    # buffer so stdout carries exactly one JSON document.
    out = io.StringIO() if json_mode else sys.stdout
    probe = MemoryProbe(obs).start() if want_obs else None

    # Phase timers always run (two perf_counter pairs), so the elapsed
    # line reports graph loading and computation separately even without
    # --stats; with it, the same numbers land in the report.
    phases: dict[str, float] = {}
    with timed("load", phases):
        graph = _load_graph(args)
    print(f"graph: {graph}", file=out)

    counts_payload: "dict | None" = None
    with timed("compute", phases):
        if args.command == "count":
            if (args.p is None) != (args.q is None):
                raise SystemExit("-p and -q must be given together")
            if args.method == "matrix":
                from repro.core.matrix import (
                    MATRIX_MAX_P,
                    MATRIX_MAX_Q,
                    matrix_available,
                    matrix_count_all,
                    matrix_count_single,
                    matrix_supported,
                )

                if not matrix_available():
                    raise SystemExit(
                        "--method matrix requires scipy; use --method epivoter"
                    )
                if args.p is not None:
                    if not matrix_supported(args.p, args.q):
                        raise SystemExit(
                            "--method matrix supports min(p, q) <= 2 or (3, 3); "
                            f"({args.p}, {args.q}) needs --method epivoter"
                        )
                    value = matrix_count_single(graph, args.p, args.q, obs=obs)
                    counts_payload = {
                        "kind": "single", "p": args.p, "q": args.q, "value": value,
                    }
                    print(f"C({args.p},{args.q}) = {value}", file=out)
                else:
                    if args.max_p > MATRIX_MAX_P or args.max_q > MATRIX_MAX_Q:
                        raise SystemExit(
                            "--method matrix fills at most "
                            f"({MATRIX_MAX_P}, {MATRIX_MAX_Q}); pass "
                            "--max-p/--max-q <= 3 or use --method epivoter"
                        )
                    counts = matrix_count_all(
                        graph, args.max_p, args.max_q, obs=obs
                    )
                    counts_payload = counts_to_dict(counts)
                    _print_counts(counts, args.max_p, args.max_q, out)
            elif args.p is not None:
                engine = EPivoter(graph, pivot=args.pivot)
                value = engine.count_single(
                    args.p, args.q, workers=args.workers, obs=obs,
                    heartbeat=heartbeat,
                )
                counts_payload = {
                    "kind": "single", "p": args.p, "q": args.q, "value": value,
                }
                print(f"C({args.p},{args.q}) = {value}", file=out)
            else:
                engine = EPivoter(graph, pivot=args.pivot)
                counts = engine.count_all(
                    args.max_p, args.max_q, workers=args.workers, obs=obs,
                    heartbeat=heartbeat,
                )
                counts_payload = counts_to_dict(counts)
                _print_counts(counts, args.max_p, args.max_q, out)
        elif args.command == "estimate":
            if args.algorithm == "zigzag":
                counts = zigzag_count_all(
                    graph, args.h_max, args.samples, args.seed, obs=obs,
                    workers=args.workers, batch=not args.per_sample,
                )
            elif args.algorithm == "zigzag++":
                counts = zigzagpp_count_all(
                    graph, args.h_max, args.samples, args.seed, obs=obs,
                    workers=args.workers, batch=not args.per_sample,
                )
            else:
                estimator = "zigzag" if args.algorithm == "hybrid" else "zigzag++"
                counts = hybrid_count_all(
                    graph, args.h_max, args.samples, args.seed,
                    estimator=estimator, workers=args.workers, obs=obs,
                )
            counts_payload = counts_to_dict(counts)
            _print_counts(counts, args.h_max, args.h_max, out)
        elif args.command == "maximal":
            bicliques = enumerate_maximal_bicliques(graph, obs=obs)
            print(f"{len(bicliques)} maximal bicliques", file=out)
            for left, right in bicliques[: args.limit]:
                print(f"  {list(left)} x {list(right)}", file=out)
            if len(bicliques) > args.limit:
                print(f"  ... ({len(bicliques) - args.limit} more)", file=out)
        elif args.command == "hcc":
            profile = hcc_profile(graph, args.h_max, workers=args.workers)
            for k, value in sorted(profile.items()):
                print(f"hcc({k},{k}) = {value:.6f}", file=out)
        elif args.command == "densest":
            if args.method == "peeling":
                result = peeling_densest(graph, args.p, args.q)
            else:
                result = exact_densest(graph, args.p, args.q)
            print(
                f"density = {result.density:.4f} over {result.num_vertices} vertices"
                f" ({result.biclique_count} bicliques)",
                file=out,
            )
        elif args.command == "stats":
            from repro.graph.statistics import summarize

            summary = summarize(graph)
            for field_name in (
                "n_left", "n_right", "num_edges", "mean_degree_left",
                "mean_degree_right", "max_degree_left", "max_degree_right",
                "density", "num_components", "degeneracy",
            ):
                value = getattr(summary, field_name)
                rendered = f"{value:.6f}" if isinstance(value, float) else str(value)
                print(f"{field_name:<18} {rendered}", file=out)
        elif args.command == "partition":
            from repro.core.hybrid import partition_graph

            ordered = graph.degree_ordered()[0]
            sparse, dense, weights = partition_graph(
                ordered, tau=args.tau, quantile=args.quantile
            )
            obs.gauge("hybrid.sparse_vertices", len(sparse))
            obs.gauge("hybrid.dense_vertices", len(dense))
            print(
                f"sparse region: {len(sparse)} vertices; "
                f"dense region: {len(dense)} vertices; "
                f"max weight {max(weights, default=0)}",
                file=out,
            )
        elif args.command == "adaptive":
            from repro.core.adaptive import adaptive_count

            result = adaptive_count(
                graph, args.p, args.q,
                delta=args.delta, epsilon=args.epsilon,
                max_samples=args.max_samples, seed=args.seed,
                obs=obs, workers=args.workers,
            )
            lo, hi = result.interval
            status = "met" if result.satisfied else "sample cap reached"
            print(
                f"C({args.p},{args.q}) ~= {result.estimate:.1f} "
                f"[{lo:.1f}, {hi:.1f}] after {result.samples_used} samples ({status})",
                file=out,
            )

    if heartbeat is not None:
        heartbeat.finish()
    if probe is not None:
        probe.stop()

    total = phases["load"] + phases["compute"]
    print(
        f"elapsed: load {phases['load']:.3f}s compute {phases['compute']:.3f}s"
        f" total {total:.3f}s",
        file=out,
    )

    if want_obs:
        obs.add_time("load", phases["load"])
        obs.add_time("compute", phases["compute"])
        # The same phase durations also land in a labelled histogram so
        # every run report carries a valid (if small) histograms section.
        for phase_name in ("load", "compute"):
            obs.observe(
                "cli.phase_seconds", phases[phase_name],
                labels={"phase": phase_name},
            )
        report = RunReport.from_registry(
            obs,
            command=args.command,
            arguments=_report_arguments(args),
            graph={
                "n_left": graph.n_left,
                "n_right": graph.n_right,
                "num_edges": graph.num_edges,
            },
        )
        report.counts = counts_payload
        if args.report:
            report.write(args.report)
        if args.stats:
            _print_stats(report, out)
        if json_mode:
            print(report.to_json(), file=sys.stdout)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
