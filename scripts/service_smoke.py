"""CI smoke test for the HTTP serving layer.

Starts a real ``repro-biclique serve`` subprocess on a synthetic
dataset, exercises every endpoint with urllib, and asserts the served
counts equal the golden values pinned in ``tests/test_golden_counts.py``
— the same numbers the tier-1 suite holds the engines to, now checked
through planner, executor, cache, and HTTP socket.

Run from the repository root:

    PYTHONPATH=src:. python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import urllib.error
import urllib.request

DATASET = "DBLP"


def post(base: str, path: str, body: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get(base: str, path: str) -> tuple[int, dict]:
    with urllib.request.urlopen(base + path, timeout=60) as response:
        return response.status, json.loads(response.read())


def get_text(base: str, path: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(base + path, timeout=60) as response:
        return (
            response.status,
            response.read().decode(),
            response.headers.get("Content-Type", ""),
        )


#: Prometheus exposition grammar: a ``# TYPE`` comment or one sample
#: line ``name{labels} value`` (labels optional, numeric value).
_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_TYPE_LINE = re.compile(rf"^# TYPE {_NAME} (counter|gauge|histogram)$")
_SAMPLE_LINE = re.compile(
    rf"^{_NAME}(\{{{_NAME}=\"(?:[^\"\\]|\\.)*\"(?:,{_NAME}=\"(?:[^\"\\]|\\.)*\")*\}})? "
    r"-?[0-9][0-9eE+.\-]*$"
)


def check_prometheus(text: str) -> None:
    """Every line must match the exposition grammar; buckets monotone."""
    assert text.endswith("\n"), "exposition must end with a newline"
    bucket_series: dict[str, list[int]] = {}
    for line in text.strip("\n").split("\n"):
        assert _TYPE_LINE.match(line) or _SAMPLE_LINE.match(line), (
            f"bad exposition line: {line!r}"
        )
        if "_bucket" in line:
            labels, value = line.rsplit(" ", 1)
            series = re.sub(r'le="[^"]*",?', "", labels)
            bucket_series.setdefault(series, []).append(int(value))
    for series, values in bucket_series.items():
        assert values == sorted(values), (
            f"non-monotone cumulative buckets for {series}: {values}"
        )


def main() -> int:
    from tests.test_golden_counts import GOLDEN

    golden = GOLDEN[DATASET]
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--dataset", DATASET, "--port", "0", "--threads", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        line = proc.stdout.readline().strip()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, f"no readiness line, got {line!r}"
        base = f"http://{match.group(1)}:{match.group(2)}"
        print(f"server up at {base}")

        status, body = get(base, "/healthz")
        assert status == 200 and body["status"] == "ok", body
        assert body["graphs"] == [DATASET], body
        assert body["uptime_seconds"] >= 0, body
        assert body["registrations"][DATASET]["registered_unix"] > 0, body
        print(f"healthz OK (version {body['version']})")

        # Exact counts through the full service path == golden values.
        for p, q in ((2, 2), (3, 3), (4, 4)):
            status, body = post(
                base, "/v1/count", {"graph": DATASET, "p": p, "q": q}
            )
            assert status == 200, body
            assert body["exact"] is True and body["degraded"] is False, body
            assert body["value"] == golden[(p, q)], (
                f"count({p},{q}) = {body['value']} != golden {golden[(p, q)]}"
            )
            print(f"count({p},{q}) = {body['value']} (golden) "
                  f"in {body['elapsed_ms']}ms")

        # A repeat is served from the cache.
        status, body = post(base, "/v1/count", {"graph": DATASET, "p": 2, "q": 2})
        assert status == 200 and body["cached"] is True, body
        print("repeat query served from cache")

        # A millisecond deadline degrades to an estimator, not an error.
        status, body = post(
            base, "/v1/count",
            {"graph": DATASET, "p": 3, "q": 3, "deadline_ms": 1},
        )
        assert status == 200 and body["degraded"] is True, body
        assert body["method"] != "epivoter", body
        print(f"1ms deadline degraded to {body['method']}: {body['reason']}")

        # Estimation endpoint, seeded.
        status, body = post(
            base, "/v1/estimate",
            {"graph": DATASET, "p": 2, "q": 2, "samples": 5000, "seed": 7},
        )
        assert status == 200, body
        exact = golden[(2, 2)]
        assert 0 < body["value"] < 10 * exact, body
        print(f"estimate(2,2) = {body['value']} vs exact {exact}")

        # A traced query returns its span tree; the phase spans account
        # for (cannot exceed) the reported request latency.
        status, body = post(
            base, "/v1/count",
            {"graph": DATASET, "p": 4, "q": 2, "trace": True},
        )
        assert status == 200, body
        trace = body["trace"]
        assert trace["trace_id"] == body["trace_id"], body
        children = trace["spans"]["children"]
        names = [span["name"] for span in children]
        assert "queue_wait" in names and "plan" in names, names
        assert any(name.startswith("engine:") for name in names), names
        plan_span = next(s for s in children if s["name"] == "plan")
        assert plan_span["attributes"]["engine"] == body["method"], plan_span
        total_ms = sum(s["duration_ms"] for s in children)
        assert total_ms <= body["request_ms"] + 1.0, (total_ms, body["request_ms"])
        print(
            f"trace {body['trace_id']}: {len(children)} spans, "
            f"{total_ms:.2f}ms of {body['request_ms']}ms accounted"
        )

        # The trace ring serves the listing and the detail document.
        status, listing = get(base, "/v1/traces?slow=0")
        assert status == 200 and listing["retained"] >= 1, listing
        status, detail = get(base, f"/v1/traces/{body['trace_id']}")
        assert status == 200 and detail["spans"]["children"], detail
        print(f"trace ring holds {listing['retained']} traces")

        # Error mapping.
        status, _ = post(base, "/v1/count", {"graph": "ghost", "p": 2, "q": 2})
        assert status == 404, status
        status, _ = post(base, "/v1/count", {"graph": DATASET})
        assert status == 400, status

        # Metrics reflect what just happened.
        status, body = get(base, "/metrics")
        assert status == 200, status
        counters = body["counters"]
        assert counters["service.cache.hits"] >= 1, counters
        assert counters["service.degraded"] >= 1, counters
        assert counters["service.engine_runs"] >= 4, counters
        assert body["cache"]["size"] >= 4, body["cache"]
        assert body["cache"]["hits"] >= 1, body["cache"]
        assert counters["service.http_status.2xx"] >= 1, counters
        assert counters["service.http_status.4xx"] >= 2, counters
        print("metrics OK:", {
            name: value for name, value in sorted(counters.items())
            if name.startswith("service.")
        })

        # Prometheus exposition: every line obeys the grammar, buckets
        # are monotone, and the HTTP latency histogram saw our traffic.
        status, text, content_type = get_text(base, "/metrics?format=prometheus")
        assert status == 200, status
        assert "version=0.0.4" in content_type, content_type
        check_prometheus(text)
        lines = text.strip("\n").split("\n")
        count_lines = [
            line for line in lines
            if line.startswith("service_http_latency_seconds_count")
        ]
        assert count_lines, "no HTTP latency histogram in exposition"
        assert any(int(l.rsplit(" ", 1)[1]) > 0 for l in count_lines), count_lines
        assert "# TYPE service_http_latency_seconds histogram" in lines
        print(f"prometheus exposition OK ({len(lines)} lines)")
        print("service smoke OK")
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
