"""CI smoke test for the HTTP serving layer.

Starts a real ``repro-biclique serve`` subprocess on a synthetic
dataset, exercises every endpoint with urllib, and asserts the served
counts equal the golden values pinned in ``tests/test_golden_counts.py``
— the same numbers the tier-1 suite holds the engines to, now checked
through planner, executor, cache, and HTTP socket.

Run from the repository root:

    PYTHONPATH=src:. python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import urllib.error
import urllib.request

DATASET = "DBLP"


def post(base: str, path: str, body: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get(base: str, path: str) -> tuple[int, dict]:
    with urllib.request.urlopen(base + path, timeout=60) as response:
        return response.status, json.loads(response.read())


def main() -> int:
    from tests.test_golden_counts import GOLDEN

    golden = GOLDEN[DATASET]
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--dataset", DATASET, "--port", "0", "--threads", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        line = proc.stdout.readline().strip()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, f"no readiness line, got {line!r}"
        base = f"http://{match.group(1)}:{match.group(2)}"
        print(f"server up at {base}")

        status, body = get(base, "/healthz")
        assert status == 200 and body["status"] == "ok", body
        assert body["graphs"] == [DATASET], body

        # Exact counts through the full service path == golden values.
        for p, q in ((2, 2), (3, 3), (4, 4)):
            status, body = post(
                base, "/v1/count", {"graph": DATASET, "p": p, "q": q}
            )
            assert status == 200, body
            assert body["exact"] is True and body["degraded"] is False, body
            assert body["value"] == golden[(p, q)], (
                f"count({p},{q}) = {body['value']} != golden {golden[(p, q)]}"
            )
            print(f"count({p},{q}) = {body['value']} (golden) "
                  f"in {body['elapsed_ms']}ms")

        # A repeat is served from the cache.
        status, body = post(base, "/v1/count", {"graph": DATASET, "p": 2, "q": 2})
        assert status == 200 and body["cached"] is True, body
        print("repeat query served from cache")

        # A millisecond deadline degrades to an estimator, not an error.
        status, body = post(
            base, "/v1/count",
            {"graph": DATASET, "p": 3, "q": 3, "deadline_ms": 1},
        )
        assert status == 200 and body["degraded"] is True, body
        assert body["method"] != "epivoter", body
        print(f"1ms deadline degraded to {body['method']}: {body['reason']}")

        # Estimation endpoint, seeded.
        status, body = post(
            base, "/v1/estimate",
            {"graph": DATASET, "p": 2, "q": 2, "samples": 5000, "seed": 7},
        )
        assert status == 200, body
        exact = golden[(2, 2)]
        assert 0 < body["value"] < 10 * exact, body
        print(f"estimate(2,2) = {body['value']} vs exact {exact}")

        # Error mapping.
        status, _ = post(base, "/v1/count", {"graph": "ghost", "p": 2, "q": 2})
        assert status == 404, status
        status, _ = post(base, "/v1/count", {"graph": DATASET})
        assert status == 400, status

        # Metrics reflect what just happened.
        status, body = get(base, "/metrics")
        assert status == 200, status
        counters = body["counters"]
        assert counters["service.cache.hits"] >= 1, counters
        assert counters["service.degraded"] >= 1, counters
        assert counters["service.engine_runs"] >= 4, counters
        assert body["cache"]["size"] >= 4, body["cache"]
        print("metrics OK:", {
            name: value for name, value in sorted(counters.items())
            if name.startswith("service.")
        })
        print("service smoke OK")
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
