"""Lint guard: no new per-node Python traversal loops in ``core/``.

PR 8 moved the exact-engine hot path to frontier batching — whole
levels of the enumeration tree expand through vectorised kernels, so
a ``stack.pop()`` driving a ``while`` loop in ``src/repro/core/`` is
almost always a regression back to the per-node scalar walk.  This
script AST-walks every module there and flags each ``.pop()`` call
inside a ``while`` loop unless its source line carries a
``# scalar-pop-ok`` pragma (used by the retained scalar correctness
twin, the MBCE baseline, and the frontier loop's whole-batch pops).

Run from the repo root (CI lint job does)::

    python scripts/check_scalar_traversal.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

CORE = Path(__file__).resolve().parent.parent / "src" / "repro" / "core"
PRAGMA = "# scalar-pop-ok"


def _pop_calls(tree: ast.AST):
    """Yield every ``<expr>.pop(...)`` call nested under a ``while``."""
    stack: list[tuple[ast.AST, bool]] = [(tree, False)]
    while stack:
        node, in_while = stack.pop()  # scalar-pop-ok: AST walk, not a traversal
        if (
            in_while
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
        ):
            yield node
        here = in_while or isinstance(node, ast.While)
        stack.extend((child, here) for child in ast.iter_child_nodes(node))


def check_file(path: Path) -> list[str]:
    source = path.read_text()
    lines = source.splitlines()
    failures = []
    for call in _pop_calls(ast.parse(source, filename=str(path))):
        line = lines[call.lineno - 1]
        if PRAGMA not in line:
            failures.append(
                f"{path}:{call.lineno}: per-node .pop() traversal in core/ "
                f"(vectorise it, or annotate the line with '{PRAGMA}: why')"
            )
    return failures


def main() -> int:
    failures: list[str] = []
    for path in sorted(CORE.glob("*.py")):
        failures.extend(check_file(path))
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        return 1
    print(f"scalar-traversal guard: {len(list(CORE.glob('*.py')))} modules clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
