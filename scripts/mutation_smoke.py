"""CI smoke test for the dynamic-graph mutation path.

Starts a real ``repro-biclique serve`` subprocess with a tiny
compaction threshold, then drives the full mutation lifecycle over
HTTP: register (via ``--dataset`` preload) → count → PATCH → count →
keep mutating until the overlay compacts → count again.  Every served
count is checked against an oracle rebuilt from scratch in this
process, and the pre-mutation cache entry is asserted to never be
served once the fingerprint has moved.

Run from the repository root:

    PYTHONPATH=src:. python scripts/mutation_smoke.py
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import urllib.error
import urllib.request

DATASET = "Github"
COMPACT_EDGES = 24


def request(method: str, base: str, path: str, body: "dict | None" = None):
    req = urllib.request.Request(
        base + path,
        data=None if body is None else json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(req, timeout=300) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main() -> int:
    from repro.core.epivoter import EPivoter
    from repro.graph.bigraph import BipartiteGraph
    from repro.graph.datasets import load_dataset

    graph = load_dataset(DATASET)
    current = set(graph.edges())

    def oracle(p: int, q: int) -> int:
        rebuilt = BipartiteGraph(graph.n_left, graph.n_right, sorted(current))
        return EPivoter(rebuilt).count_single(p, q)

    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--dataset", DATASET, "--port", "0", "--threads", "2",
            "--compact-edges", str(COMPACT_EDGES),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        line = proc.stdout.readline().strip()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, f"no readiness line, got {line!r}"
        base = f"http://{match.group(1)}:{match.group(2)}"
        print(f"server up at {base}")

        # Baseline: exact count, then a cached repeat.
        status, before = request(
            "POST", base, "/v1/count", {"graph": DATASET, "p": 2, "q": 2}
        )
        assert status == 200 and before["value"] == oracle(2, 2), before
        status, repeat = request(
            "POST", base, "/v1/count", {"graph": DATASET, "p": 2, "q": 2}
        )
        assert repeat["cached"] is True, repeat
        pre_mutation_fp = before["fingerprint"]
        print(f"baseline count(2,2) = {before['value']} (cached repeat OK)")

        # One PATCH: deterministic toggles, all-or-nothing semantics.
        removals = sorted(current)[:3]
        additions = [
            [u, v]
            for u in range(4)
            for v in range(4)
            if (u, v) not in current
        ][:3]
        status, body = request(
            "PATCH", base, f"/v1/graphs/{DATASET}",
            {"add_edges": additions, "remove_edges": [list(e) for e in removals]},
        )
        assert status == 200, body
        assert body["version"] == 1 and body["changed"] is True, body
        assert f"#v1-" in body["fingerprint"], body
        current -= set(removals)
        current |= {tuple(e) for e in additions}
        print(
            f"PATCH applied: +{body['added']} -{body['removed']}, "
            f"fingerprint {body['fingerprint'][-24:]}"
        )

        # The post-mutation count is correct, served under the new
        # fingerprint, and provably not from the pre-mutation cache.
        status, after = request(
            "POST", base, "/v1/count", {"graph": DATASET, "p": 2, "q": 2}
        )
        assert status == 200, after
        assert after["cached"] is False, "pre-mutation cache entry served!"
        assert after["fingerprint"] == body["fingerprint"], after
        assert after["fingerprint"] != pre_mutation_fp, after
        assert after["value"] == oracle(2, 2), (after["value"], oracle(2, 2))
        print(f"post-mutation count(2,2) = {after['value']} (oracle match)")

        # Idempotent retransmit: same batch, no version bump.
        status, again = request(
            "PATCH", base, f"/v1/graphs/{DATASET}",
            {"add_edges": additions, "remove_edges": [list(e) for e in removals]},
        )
        assert status == 200 and again["changed"] is False, again
        assert again["version"] == 1, again
        print("idempotent retransmit OK")

        # Keep mutating until the overlay crosses the compaction bound.
        edge_pool = sorted(set(graph.edges()))[3 : 3 + 4 * COMPACT_EDGES]
        compacted_at = None
        for i in range(0, len(edge_pool), 8):
            batch = edge_pool[i : i + 8]
            removes = [list(e) for e in batch if e in current]
            adds = [list(e) for e in batch if e not in current]
            status, body = request(
                "PATCH", base, f"/v1/graphs/{DATASET}",
                {"add_edges": adds, "remove_edges": removes},
            )
            assert status == 200, body
            current = (current - {tuple(e) for e in removes}) | {
                tuple(e) for e in adds
            }
            if body["compacted"]:
                compacted_at = body["version"]
                assert body["overlay_edges"] == 0, body
                break
        assert compacted_at is not None, "overlay never compacted"
        status, metrics = request("GET", base, "/metrics")
        counters = metrics["counters"]
        assert counters["graph.compactions"] >= 1, counters
        assert counters["graph.mutations"] >= 2, counters
        print(f"compacted at version {compacted_at} "
              f"({counters['graph.mutations']} mutations)")

        # Counts stay exact across the compaction boundary.
        for p, q in ((2, 2), (3, 3)):
            status, body = request(
                "POST", base, "/v1/count", {"graph": DATASET, "p": p, "q": q}
            )
            assert status == 200, body
            assert body["value"] == oracle(p, q), (
                f"count({p},{q}) = {body['value']} != oracle {oracle(p, q)}"
            )
            print(f"post-compaction count({p},{q}) = {body['value']} (oracle)")

        # Error mapping: 404 unknown graph, 409 unknown vertices,
        # 400 malformed parameters.
        status, _ = request(
            "PATCH", base, "/v1/graphs/ghost", {"add_edges": [[0, 0]]}
        )
        assert status == 404, status
        status, body = request(
            "PATCH", base, f"/v1/graphs/{DATASET}",
            {"add_edges": [[graph.n_left + 7, 0]]},
        )
        assert status == 409 and body["unknown_left"] == [graph.n_left + 7], body
        status, _ = request(
            "POST", base, "/v1/count", {"graph": DATASET, "p": 2.5, "q": 2}
        )
        assert status == 400, status
        print("error mapping OK (404/409/400)")
        print("mutation smoke OK")
        return 0
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
