"""CI smoke test for the sharded serving layer.

Boots two real ``repro-biclique serve --shard`` subprocesses and one
``repro-biclique coordinate`` subprocess wired to them, then drives the
coordinator's public HTTP API with urllib:

* the full golden sweep (``p, q <= 3``) over the DBLP dataset must be
  bit-identical to the single-node values pinned in
  ``tests/test_golden_counts.py``;
* after SIGKILL of one shard mid-sweep, a fresh exact query must still
  return the golden value (re-scattered to the survivor, never a wrong
  exact count);
* after SIGKILL of the second shard, the coordinator must degrade
  (``degraded: true`` with a shard-loss reason), not error and not
  fabricate an exact count.

Run from the repository root:

    PYTHONPATH=src:. python scripts/cluster_smoke.py
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import urllib.error
import urllib.request

DATASET = "DBLP"

_READINESS = re.compile(r"http://([\d.]+):(\d+)")


def post(base: str, path: str, body: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get(base: str, path: str) -> tuple[int, dict]:
    with urllib.request.urlopen(base + path, timeout=60) as response:
        return response.status, json.loads(response.read())


def spawn(args: "list[str]") -> tuple[subprocess.Popen, str]:
    """Start a repro.cli subprocess and parse its readiness line."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = proc.stdout.readline().strip()
    match = _READINESS.search(line)
    assert match, f"no readiness line from {args[0]!r}, got {line!r}"
    return proc, f"http://{match.group(1)}:{match.group(2)}"


def main() -> int:
    from tests.test_golden_counts import GOLDEN

    golden = GOLDEN[DATASET]
    procs: "list[subprocess.Popen]" = []
    try:
        shard_bases = []
        for _ in range(2):
            proc, base = spawn(
                ["serve", "--shard", "--port", "0", "--threads", "2"]
            )
            procs.append(proc)
            shard_bases.append(base)
        shard_specs = ",".join(base[len("http://"):] for base in shard_bases)
        print(f"shards up at {shard_specs}")

        coordinator, base = spawn(
            [
                "coordinate", "--shards", shard_specs,
                "--dataset", DATASET, "--port", "0", "--threads", "2",
                "--shard-timeout", "120",
            ]
        )
        procs.append(coordinator)
        print(f"coordinator up at {base}")

        # Roles: shards report themselves, the coordinator reports the
        # fleet (registered + healthy after the dataset preload).
        status, body = get(shard_bases[0], "/healthz")
        assert status == 200 and body["role"] == "shard", body
        status, body = get(base, "/healthz")
        assert status == 200 and body["role"] == "coordinator", body
        assert len(body["shards"]) == 2, body
        assert all(entry["healthy"] for entry in body["shards"]), body
        print("healthz roles OK (coordinator sees 2 healthy shards)")

        # Acceptance: the scattered exact counts are bit-identical to
        # the golden single-node values, across the full p, q <= 3 grid.
        for (p, q), expected in sorted(golden.items()):
            if p > 3 or q > 3:
                continue
            status, body = post(
                base, "/v1/count",
                {"graph": DATASET, "p": p, "q": q, "method": "epivoter"},
            )
            assert status == 200, body
            assert body["exact"] is True and body["degraded"] is False, body
            assert body["value"] == expected, (
                f"count({p},{q}) = {body['value']} != golden {expected}"
            )
            assert body["shards_used"] == 2, body
        print("golden sweep OK: 2-shard counts bit-identical, p,q <= 3")

        # The coordinator's own cache fronts the cluster.
        status, body = post(
            base, "/v1/count",
            {"graph": DATASET, "p": 3, "q": 3, "method": "epivoter"},
        )
        assert status == 200 and body["cached"] is True, body
        print("repeat query served from the coordinator cache")

        # Kill one shard (SIGKILL, no shutdown handshake).  A fresh
        # query must re-scatter its lost ranges to the survivor and
        # still return the exact golden value.
        procs[1].kill()
        procs[1].wait(timeout=15)
        status, body = post(
            base, "/v1/count",
            {"graph": DATASET, "p": 4, "q": 2, "method": "epivoter"},
        )
        assert status == 200, body
        assert body["exact"] is True and body["degraded"] is False, body
        assert body["value"] == golden[(4, 2)], body
        assert body["rescatters"] >= 1, body
        status, health = get(base, "/healthz")
        healthy = [entry["healthy"] for entry in health["shards"]]
        assert sorted(healthy) == [False, True], health
        print("shard kill OK: exact count re-scattered to the survivor")

        # Kill the survivor too: the coordinator must degrade with a
        # shard-loss reason — and never emit a wrong exact count.
        procs[0].kill()
        procs[0].wait(timeout=15)
        status, body = post(
            base, "/v1/count",
            {"graph": DATASET, "p": 4, "q": 4, "method": "epivoter"},
        )
        assert status == 200, body
        assert body["degraded"] is True, body
        assert "shard loss" in body["reason"], body
        assert "no surviving shards" in body["reason"], body
        if body["exact"]:
            assert body["value"] == golden[(4, 4)], body
        print(f"fleet loss OK: degraded to {body['method']}: {body['reason']}")

        # Metrics reflect the story just told.
        status, body = get(base, "/metrics")
        assert status == 200, status
        counters = body["counters"]
        assert counters["cluster.scatters"] >= 10, counters
        assert counters["cluster.shard_failures"] >= 2, counters
        assert counters["cluster.rescatters"] >= 1, counters
        assert counters["cluster.degraded"] >= 1, counters
        print("metrics OK:", {
            name: value for name, value in sorted(counters.items())
            if name.startswith("cluster.")
        })
        print("cluster smoke OK")
        return 0
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
